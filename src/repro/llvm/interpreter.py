"""A reference interpreter for the simulated IR.

Used for two purposes, both from the paper's "validating semantics" feature:

1. *Differential testing*: a benchmark records the interpreter's output on its
   unoptimized module; after optimization, the output must be identical. Any
   mismatch is a miscompilation and is reported as a validation error.
2. *Sanitizer-style checks*: the interpreter traps undefined behaviour
   (division by zero, use of undefined values in branches, out-of-bounds
   global accesses) the way LLVM's UBSan/ASan instrumentation would.
"""

from typing import Dict, List, Optional, Tuple

from repro.errors import OpaqueFunctionError
from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


class ExecutionError(Exception):
    """The interpreted program performed an illegal operation."""


class StepLimitExceeded(ExecutionError):
    """The interpreted program ran for too many steps (possible infinite loop)."""


class ExecutionResult:
    """The observable behaviour of one program execution."""

    def __init__(self, return_value, output: List, steps: int):
        self.return_value = return_value
        self.output = output
        self.steps = steps

    def __eq__(self, other) -> bool:
        if not isinstance(other, ExecutionResult):
            return NotImplemented
        return self.return_value == other.return_value and self.output == other.output

    def __repr__(self) -> str:
        return f"ExecutionResult(return={self.return_value}, outputs={len(self.output)}, steps={self.steps})"


class Interpreter:
    """Executes a module starting from an entry function."""

    def __init__(self, module: Module, max_steps: int = 200_000):
        self.module = module
        self.max_steps = max_steps
        self.steps = 0
        self.output: List = []
        # Global memory: one cell (or array) per global variable.
        self.global_memory: Dict[str, List] = {
            name: [g.initializer] * max(1, g.array_size) for name, g in module.globals.items()
        }
        self._next_address = 0

    # -- value evaluation -------------------------------------------------------

    def _value(self, value: Value, frame: Dict[Value, object]):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, GlobalVariable):
            return ("global", value.name, 0)
        if value in frame:
            return frame[value]
        raise ExecutionError(f"Use of value with no binding: {value!r}")

    # -- memory -----------------------------------------------------------------

    def _load(self, pointer) -> object:
        if not isinstance(pointer, tuple):
            raise ExecutionError(f"Load from non-pointer value: {pointer!r}")
        kind, name, offset = pointer
        if kind == "global":
            cells = self.global_memory[name]
        else:
            cells = name  # Local allocation: name *is* the cell list.
        if not 0 <= offset < len(cells):
            raise ExecutionError(f"Out-of-bounds access at offset {offset}")
        return cells[offset]

    def _store(self, pointer, value) -> None:
        if not isinstance(pointer, tuple):
            raise ExecutionError(f"Store to non-pointer value: {pointer!r}")
        kind, name, offset = pointer
        cells = self.global_memory[name] if kind == "global" else name
        if not 0 <= offset < len(cells):
            raise ExecutionError(f"Out-of-bounds access at offset {offset}")
        cells[offset] = value

    # -- execution ---------------------------------------------------------------

    def run(self, entry_point: str = "main", args: Optional[List] = None) -> ExecutionResult:
        """Execute the program and return its observable behaviour."""
        function = self.module.function(entry_point)
        if function is None or function.is_declaration:
            raise ExecutionError(f"No defined entry point @{entry_point}")
        value = self.call(function, list(args or []))
        return ExecutionResult(return_value=value, output=list(self.output), steps=self.steps)

    def call(self, function: Function, args: List, depth: int = 0):
        if depth > 64:
            raise ExecutionError("Call stack depth limit exceeded")
        frame: Dict[Value, object] = {}
        for formal, actual in zip(function.args, args):
            frame[formal] = actual
        block = function.entry
        previous_block: Optional[BasicBlock] = None
        while True:
            next_block, returned, has_returned = self._run_block(
                function, block, previous_block, frame, depth
            )
            if has_returned:
                return returned
            previous_block, block = block, next_block

    def _run_block(
        self,
        function: Function,
        block: BasicBlock,
        previous_block: Optional[BasicBlock],
        frame: Dict[Value, object],
        depth: int,
    ) -> Tuple[Optional[BasicBlock], object, bool]:
        # Phi nodes read their incoming value based on the edge taken; all
        # phis in a block are evaluated simultaneously.
        phi_values = {}
        for phi in block.phis():
            incoming = {b: v for v, b in phi.phi_incoming()}
            if previous_block not in incoming:
                raise ExecutionError(
                    f"Phi %{phi.name} has no incoming value for predecessor "
                    f"{previous_block.name if previous_block else None}"
                )
            phi_values[phi] = self._value(incoming[previous_block], frame)
        frame.update(phi_values)

        for inst in block.non_phi_instructions():
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(f"Exceeded {self.max_steps} interpreter steps")
            result = None
            op = inst.opcode

            if inst.is_binary:
                result = self._binary(op, inst, frame)
            elif inst.is_compare:
                result = self._compare(inst, frame)
            elif inst.is_cast:
                result = self._cast(inst, frame)
            elif op == "alloca":
                size = int(self._value(inst.operands[0], frame)) if inst.operands else 1
                result = ("local", [0] * max(1, size), 0)
            elif op == "load":
                result = self._load(self._value(inst.operands[0], frame))
            elif op == "store":
                self._store(self._value(inst.operands[1], frame), self._value(inst.operands[0], frame))
            elif op == "getelementptr":
                base = self._value(inst.operands[0], frame)
                offset = sum(int(self._value(index, frame)) for index in inst.operands[1:])
                if not isinstance(base, tuple):
                    raise ExecutionError("getelementptr on non-pointer")
                result = (base[0], base[1], base[2] + offset)
            elif op == "select":
                cond = self._value(inst.operands[0], frame)
                result = self._value(inst.operands[1] if cond else inst.operands[2], frame)
            elif op == "call":
                result = self._call(inst, frame, depth)
            elif op == "br":
                if len(inst.operands) == 1:
                    return inst.operands[0], None, False
                cond = self._value(inst.operands[0], frame)
                return (inst.operands[1] if cond else inst.operands[2]), None, False
            elif op == "switch":
                value = self._value(inst.operands[0], frame)
                target = inst.operands[1]
                for i in range(2, len(inst.operands), 2):
                    if self._value(inst.operands[i], frame) == value:
                        target = inst.operands[i + 1]
                        break
                return target, None, False
            elif op == "ret":
                value = self._value(inst.operands[0], frame) if inst.operands else None
                return None, value, True
            elif op == "unreachable":
                raise ExecutionError("Executed unreachable instruction")
            else:
                raise ExecutionError(f"Cannot interpret opcode {op!r}")

            if inst.has_result:
                frame[inst] = result
        raise ExecutionError(f"Block %{block.name} fell through without a terminator")

    def _binary(self, op: str, inst: Instruction, frame):
        lhs = self._value(inst.operands[0], frame)
        rhs = self._value(inst.operands[1], frame)
        if op in ("sdiv", "udiv", "srem", "urem", "fdiv", "frem") and rhs == 0:
            raise ExecutionError(f"Division by zero in {op}")
        from repro.llvm.passes.utils import _FLOAT_BINOPS, _INT_BINOPS, _wrap_int

        if op in _INT_BINOPS:
            return _wrap_int(_INT_BINOPS[op](int(lhs), int(rhs)), inst.type)
        if op in _FLOAT_BINOPS:
            return _FLOAT_BINOPS[op](float(lhs), float(rhs))
        if op in ("sdiv", "udiv"):
            return _wrap_int(int(int(lhs) / int(rhs)), inst.type)
        if op in ("srem", "urem"):
            return _wrap_int(int(lhs) - int(int(lhs) / int(rhs)) * int(rhs), inst.type)
        if op == "fdiv":
            return float(lhs) / float(rhs)
        if op == "frem":
            return float(lhs) % float(rhs)
        raise ExecutionError(f"Cannot interpret binary opcode {op!r}")

    def _compare(self, inst: Instruction, frame):
        from repro.llvm.passes.utils import _FCMP, _ICMP

        lhs = self._value(inst.operands[0], frame)
        rhs = self._value(inst.operands[1], frame)
        predicate = inst.attrs.get("predicate", "eq")
        table = _ICMP if inst.opcode == "icmp" else _FCMP
        return int(bool(table[predicate](lhs, rhs)))

    def _cast(self, inst: Instruction, frame):
        from repro.llvm.passes.utils import _wrap_int

        value = self._value(inst.operands[0], frame)
        if inst.opcode in ("sitofp", "fpext", "fptrunc"):
            return float(value)
        return _wrap_int(int(value), inst.type)

    def _call(self, inst: Instruction, frame, depth: int):
        callee_name = inst.attrs.get("callee", "")
        callee = self.module.function(callee_name)
        args = [self._value(operand, frame) for operand in inst.operands]
        if callee is None or callee.is_declaration:
            # External functions: model printf-style output sinks and a
            # deterministic input() source so that differential testing
            # observes program behaviour.
            if callee_name in ("printf", "puts", "putchar", "print", "output"):
                self.output.append(tuple(args))
                return len(args)
            if callee_name == "input":
                self._input_counter = getattr(self, "_input_counter", 0) + 1
                return (self._input_counter * 37 + 11) % 101
            raise OpaqueFunctionError(f"Call to opaque external function @{callee_name}")
        return self.call(callee, args, depth + 1)


def run_module(module: Module, entry_point: str = "main", args: Optional[List] = None,
               max_steps: int = 200_000) -> ExecutionResult:
    """Convenience wrapper: interpret a module from its entry point."""
    return Interpreter(module, max_steps=max_steps).run(entry_point, args)
