"""Cost models for the LLVM environment's reward signals."""

from repro.llvm.cost.code_size import ir_instruction_count
from repro.llvm.cost.binary_size import object_text_size_bytes
from repro.llvm.cost.runtime import estimate_runtime, measure_runtime

__all__ = [
    "estimate_runtime",
    "ir_instruction_count",
    "measure_runtime",
    "object_text_size_bytes",
]
