"""Code size: the number of IR instructions.

This is the platform-independent, deterministic metric the paper uses for the
``IrInstructionCount`` observation and reward spaces.
"""

from repro.llvm.ir.module import Module


def ir_instruction_count(module: Module) -> int:
    """The total number of instructions in the module."""
    return module.instruction_count
