"""Simulated program runtime.

The paper's runtime reward is the wall time of the compiled program on the
host machine: platform specific and nondeterministic. Since this reproduction
cannot execute native binaries, runtime is modelled as

    runtime = (static cost estimate) x (1 + measurement noise)

where the static estimate weights each instruction by a per-opcode latency and
by the estimated execution frequency of its basic block (loop nesting depth
raised to a trip-count base, call sites multiplying callee cost), and the
noise term is multiplicative Gaussian — so repeated measurements differ, and
median-of-N aggregation is required exactly as with real wall-clock timing.
"""

import random
from typing import Dict, Optional

from repro.llvm.ir.module import Module

# Per-opcode latency estimates in nanoseconds (loosely modelled on Skylake).
_OPCODE_LATENCY_NS: Dict[str, float] = {
    "add": 0.3, "sub": 0.3, "mul": 1.0, "sdiv": 8.0, "udiv": 8.0, "srem": 9.0, "urem": 9.0,
    "and": 0.3, "or": 0.3, "xor": 0.3, "shl": 0.4, "lshr": 0.4, "ashr": 0.4,
    "fadd": 1.2, "fsub": 1.2, "fmul": 1.5, "fdiv": 4.5, "frem": 10.0,
    "icmp": 0.3, "fcmp": 1.0,
    "zext": 0.2, "sext": 0.2, "trunc": 0.2, "bitcast": 0.0, "ptrtoint": 0.2, "inttoptr": 0.2,
    "sitofp": 1.5, "fptosi": 1.5, "fpext": 1.0, "fptrunc": 1.0,
    "alloca": 0.5, "load": 1.5, "store": 1.0, "getelementptr": 0.4,
    "br": 0.5, "switch": 2.0, "ret": 0.8, "unreachable": 0.0,
    "phi": 0.0, "call": 3.0, "select": 0.6,
}

# Assumed average trip count for loops whose bound is not a compile-time
# constant, and the nesting multiplier applied per loop level.
_DEFAULT_TRIP_COUNT = 64.0
_MAX_CALL_DEPTH = 4


def _function_cost(module: Module, function_name: str, depth: int = 0) -> float:
    """Static execution-cost estimate of one invocation of a function."""
    from repro.llvm.ir.cfg import loop_depths

    function = module.function(function_name)
    if function is None or function.is_declaration:
        return 25.0  # Opaque external call (e.g. printf).
    depths = loop_depths(function)
    cost = 5.0  # Call/return and frame overhead.
    for block in function.blocks:
        frequency = _DEFAULT_TRIP_COUNT ** depths.get(block, 0)
        for inst in block.instructions:
            inst_cost = _OPCODE_LATENCY_NS.get(inst.opcode, 1.0)
            if inst.opcode == "call" and depth < _MAX_CALL_DEPTH:
                callee = inst.attrs.get("callee", "")
                if callee != function_name:
                    inst_cost += _function_cost(module, callee, depth + 1)
            cost += inst_cost * frequency
    return cost


def estimate_runtime(module: Module, entry_point: str = "main") -> float:
    """Deterministic static runtime estimate of the module, in seconds."""
    if module.function(entry_point) is None:
        # Fall back to the sum over all defined functions (library module).
        nanoseconds = sum(
            _function_cost(module, function.name) for function in module.defined_functions()
        )
    else:
        nanoseconds = _function_cost(module, entry_point)
    return nanoseconds * 1e-9


def measure_runtime(
    module: Module,
    entry_point: str = "main",
    noise: float = 0.03,
    rng: Optional[random.Random] = None,
) -> float:
    """One simulated wall-time measurement: the static estimate perturbed by
    multiplicative Gaussian noise (default sigma 3%, typical of repeated
    wall-clock runs)."""
    rng = rng or random
    base = estimate_runtime(module, entry_point)
    factor = max(0.7, rng.gauss(1.0, noise))
    return base * factor
