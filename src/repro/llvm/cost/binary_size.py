"""Binary size: the size in bytes of the .text section of the lowered module.

The paper's binary-size metric is platform dependent but deterministic. The
simulated lowering assigns each instruction a target-specific byte cost
(x86-64 by default) plus per-function prologue/epilogue overhead, so that
binary size correlates with — but is not proportional to — IR instruction
count, and transformations such as inlining affect the two metrics
differently, just as on real hardware.
"""

from typing import Dict

from repro.llvm.ir.module import Module

# Per-opcode encoded-size estimates in bytes for each supported target.
_TARGET_OPCODE_BYTES: Dict[str, Dict[str, int]] = {
    "x86_64": {
        "add": 3, "sub": 3, "mul": 4, "sdiv": 8, "udiv": 8, "srem": 9, "urem": 9,
        "and": 3, "or": 3, "xor": 3, "shl": 4, "lshr": 4, "ashr": 4,
        "fadd": 4, "fsub": 4, "fmul": 5, "fdiv": 9, "frem": 12,
        "icmp": 3, "fcmp": 4,
        "zext": 3, "sext": 3, "trunc": 2, "bitcast": 0, "ptrtoint": 3, "inttoptr": 3,
        "sitofp": 5, "fptosi": 5, "fpext": 4, "fptrunc": 4,
        "alloca": 4, "load": 4, "store": 4, "getelementptr": 4,
        "br": 2, "switch": 6, "ret": 1, "unreachable": 2,
        "phi": 0, "call": 5, "select": 6,
    },
    "aarch64": {
        "add": 4, "sub": 4, "mul": 4, "sdiv": 4, "udiv": 4, "srem": 8, "urem": 8,
        "and": 4, "or": 4, "xor": 4, "shl": 4, "lshr": 4, "ashr": 4,
        "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 4, "frem": 12,
        "icmp": 4, "fcmp": 4,
        "zext": 4, "sext": 4, "trunc": 4, "bitcast": 0, "ptrtoint": 4, "inttoptr": 4,
        "sitofp": 4, "fptosi": 4, "fpext": 4, "fptrunc": 4,
        "alloca": 4, "load": 4, "store": 4, "getelementptr": 4,
        "br": 4, "switch": 8, "ret": 4, "unreachable": 4,
        "phi": 0, "call": 4, "select": 8,
    },
}

# Fixed per-function code for stack frame setup/teardown.
_FUNCTION_OVERHEAD_BYTES = {"x86_64": 11, "aarch64": 16}
# Conditional branches lower to a compare+branch pair on most targets.
_CONDITIONAL_BRANCH_EXTRA = {"x86_64": 4, "aarch64": 4}


def object_text_size_bytes(module: Module, target: str = "x86_64") -> int:
    """Estimate the size of the .text section for the module on ``target``."""
    if target not in _TARGET_OPCODE_BYTES:
        raise ValueError(f"Unknown target: {target!r}")
    opcode_bytes = _TARGET_OPCODE_BYTES[target]
    total = 0
    for function in module.functions.values():
        if function.is_declaration:
            continue
        total += _FUNCTION_OVERHEAD_BYTES[target]
        for inst in function.instructions():
            total += opcode_bytes.get(inst.opcode, 4)
            if inst.opcode == "br" and len(inst.operands) == 3:
                total += _CONDITIONAL_BRANCH_EXTRA[target]
            if inst.opcode == "switch":
                total += 3 * ((len(inst.operands) - 2) // 2)
    return total
