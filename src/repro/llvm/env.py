"""The LLVM phase-ordering environment."""

from typing import Optional, Union

from repro.core.datasets import Benchmark, Datasets
from repro.core.env import CompilerEnv
from repro.core.service.connection import ConnectionOpts
from repro.llvm.datasets.suites import make_llvm_datasets
from repro.llvm.rewards import make_llvm_rewards
from repro.llvm.service import LlvmCompilationSession

# The default benchmark used when none is specified, as in upstream.
DEFAULT_BENCHMARK = "benchmark://cbench-v1/qsort"


class LlvmEnv(CompilerEnv):
    """Phase ordering over the simulated LLVM IR.

    Observation spaces: Ir, IrSha1, IrInstructionCount(+O0/O3/Oz), InstCount,
    Autophase, Inst2vec(+PreprocessedText), Programl, ObjectTextSizeBytes
    (+O0/O3/Oz), Runtime, Buildtime.

    Reward spaces: IrInstructionCount(+Norm/O3/Oz), ObjectTextSizeBytes
    (+Norm/O3/Oz), Runtime.

    Action space: a Commandline space of 124 optimization passes. Episodes
    have no terminal state.
    """

    def __init__(
        self,
        benchmark: Optional[Union[str, Benchmark]] = None,
        observation_space: Optional[str] = None,
        reward_space: Optional[str] = None,
        datasets: Optional[Datasets] = None,
        connection_opts: Optional[ConnectionOpts] = None,
        **kwargs,
    ):
        super().__init__(
            session_type=LlvmCompilationSession,
            datasets=datasets or make_llvm_datasets(),
            rewards=make_llvm_rewards(),
            benchmark=benchmark or DEFAULT_BENCHMARK,
            observation_space=observation_space,
            reward_space=reward_space,
            connection_opts=connection_opts,
            **kwargs,
        )

    # -- LLVM-specific helpers --------------------------------------------------

    @property
    def ir(self) -> str:
        """The textual IR of the current program state."""
        return self.observation["Ir"]

    @property
    def ir_sha1(self) -> str:
        """SHA1 digest of the current program state."""
        return self.observation["IrSha1"]

    def write_ir(self, path: str) -> str:
        """Write the current program state to a text file."""
        with open(path, "w") as f:
            f.write(self.ir)
        return path

    def write_bitcode(self, path: str) -> str:
        """Write the current program state to a 'bitcode' file.

        The simulated compiler has no binary bitcode serialization; the file
        contains the textual IR, which :meth:`make_benchmark` accepts back.
        """
        return self.write_ir(path)

    def make_benchmark(self, ir: str, uri: str = "benchmark://user-v0/custom") -> Benchmark:
        """Create a benchmark from user-supplied IR text (or a path to it)."""
        from repro.llvm.ir.parser import parse_module

        text = ir
        try:
            with open(ir) as f:  # Allow passing a filesystem path.
                text = f.read()
        except (OSError, ValueError):
            pass
        module = parse_module(text)
        return Benchmark(uri=uri, program=module)

    @property
    def runtime_observation_count(self) -> int:
        """Number of runtime measurements returned by the Runtime observation."""
        if self._session_id is None:
            return 1
        value = self.service.handle_session_parameter(
            self._session_id, "llvm.get_runtimes_per_observation_count", ""
        )
        return int(value) if value else 1

    @runtime_observation_count.setter
    def runtime_observation_count(self, count: int) -> None:
        if self._session_id is None:
            self.reset()
        self.service.handle_session_parameter(
            self._session_id, "llvm.set_runtimes_per_observation_count", str(count)
        )

    def apply_baseline_pipeline(self, pipeline: str = "-Oz") -> None:
        """Apply the -Oz or -O3 reference pipeline to the current state."""
        if self._session_id is None:
            self.reset()
        self.service.handle_session_parameter(
            self._session_id, "llvm.apply_baseline_pipeline", pipeline
        )


def make_llvm_env(**kwargs) -> LlvmEnv:
    """Entry point used by the environment registry."""
    return LlvmEnv(**kwargs)
