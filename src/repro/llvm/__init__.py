"""Simulated LLVM phase-ordering environment.

This subpackage implements an LLVM-like compiler substrate: a typed, SSA-style
intermediate representation, a library of optimization passes, feature
extractors (InstCount, Autophase, inst2vec, ProGraML), cost models (code size,
binary size, simulated runtime), synthetic benchmark datasets matching the
paper's inventory, and the :class:`LlvmEnv` environment that exposes phase
ordering as a CompilerGym-style task.
"""

from repro.llvm.env import LlvmEnv, make_llvm_env
from repro.llvm.datasets import make_llvm_datasets

__all__ = ["LlvmEnv", "make_llvm_datasets", "make_llvm_env"]
