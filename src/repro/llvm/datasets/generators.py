"""Synthetic program generators.

Real benchmarks reach the LLVM optimizer straight out of a C frontend, full of
redundancy that ``-O0`` leaves behind: stack slots for every local variable,
constant-foldable arithmetic, repeated subexpressions, dead code, branches on
compile-time-known conditions, small loops, and small helper functions. The
:class:`ModuleGenerator` plants exactly those patterns so that the phase
ordering problem over the simulated pass library has the same structure as the
real one: different passes unlock different reductions, pass order matters,
and per-benchmark optimization potential varies widely.

``llvm_stress_module`` mirrors LLVM's ``llvm-stress`` tool: structurally valid
but semantically meaningless random IR, useful for fuzzing the pass pipeline.
"""

import random
from typing import List, Optional

from repro.llvm.ir.builder import IRBuilder
from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import DOUBLE, I1, I32, I64, PTR, VOID
from repro.llvm.ir.values import Constant, GlobalVariable, Value

_INT_BINOPS = ["add", "sub", "mul", "and", "or", "xor", "shl"]
_PREDICATES = ["eq", "ne", "slt", "sle", "sgt", "sge"]


class ModuleGenerator:
    """Deterministic generator of realistic unoptimized modules.

    Args:
        seed: RNG seed; the same seed always yields the same module.
        size_scale: Roughly the number of "statement groups" per function;
            total module size grows linearly with it.
        num_functions: Number of mid-sized worker functions (besides main and
            the helper functions).
        runnable: When True, every loop bound and branch condition is chosen
            so that the interpreter can execute ``main`` in a bounded number
            of steps, enabling differential-testing validation.
    """

    def __init__(
        self,
        seed: int,
        size_scale: int = 6,
        num_functions: int = 3,
        num_helpers: int = 3,
        runnable: bool = True,
        name: str = "benchmark",
    ):
        self.rng = random.Random(seed)
        self.size_scale = max(1, size_scale)
        self.num_functions = max(1, num_functions)
        self.num_helpers = max(0, num_helpers)
        self.runnable = runnable
        self.name = name

    # -- helpers ----------------------------------------------------------------

    def _const(self, lo: int = -64, hi: int = 64) -> Constant:
        return Constant(I32, self.rng.randint(lo, hi))

    def _pick_value(self, pool: List[Value]) -> Value:
        if pool and self.rng.random() < 0.75:
            return self.rng.choice(pool)
        return self._const()

    def _arith_chain(self, builder: IRBuilder, pool: List[Value], length: int) -> List[Value]:
        """A chain of binary operations, seeded with redundancy.

        Produces: constant-foldable operations (both operands constant),
        identity operations (x+0, x*1), duplicated subexpressions, and some
        results that are never used (dead code).
        """
        produced: List[Value] = []
        for _ in range(length):
            roll = self.rng.random()
            if roll < 0.2:
                # Constant-foldable.
                value = builder.binary(self.rng.choice(_INT_BINOPS), self._const(), self._const())
            elif roll < 0.35:
                # Identity operation: instcombine fodder.
                base = self._pick_value(pool + produced)
                identity = self.rng.choice(
                    [("add", 0), ("mul", 1), ("or", 0), ("xor", 0), ("shl", 0), ("sub", 0)]
                )
                value = builder.binary(identity[0], base, Constant(I32, identity[1]))
            elif roll < 0.55 and produced:
                # Duplicate an earlier computation exactly: CSE/GVN fodder.
                earlier = self.rng.choice([v for v in produced if isinstance(v, Instruction)])
                value = builder.binary(
                    earlier.opcode if earlier.is_binary else "add",
                    earlier.operands[0] if earlier.is_binary else self._pick_value(pool),
                    earlier.operands[1] if earlier.is_binary else self._const(),
                )
            else:
                value = builder.binary(
                    self.rng.choice(_INT_BINOPS),
                    self._pick_value(pool + produced),
                    self._pick_value(pool + produced),
                )
            produced.append(value)
        return produced

    # -- function generators ------------------------------------------------------

    def _make_helper(self, module: Module, index: int) -> Function:
        """A small, pure, inlinable helper function."""
        num_args = self.rng.randint(1, 3)
        function = Function(
            f"helper{index}",
            return_type=I32,
            arg_types=[I32] * num_args,
            arg_names=[f"a{i}" for i in range(num_args)],
            attributes=["inlinehint"] if self.rng.random() < 0.5 else [],
        )
        entry = function.add_block("entry")
        builder = IRBuilder(function, entry)
        pool: List[Value] = list(function.args)
        values = self._arith_chain(builder, pool, self.rng.randint(2, 5))
        result = values[-1] if values else function.args[0]
        builder.ret(result)
        module.add_function(function)
        return function

    def _make_dead_function(self, module: Module, index: int) -> Function:
        """A function that nothing calls: globaldce fodder."""
        function = Function(f"unused{index}", return_type=I32, arg_types=[I32], arg_names=["x"])
        entry = function.add_block("entry")
        builder = IRBuilder(function, entry)
        values = self._arith_chain(builder, list(function.args), self.rng.randint(3, 8))
        builder.ret(values[-1])
        module.add_function(function)
        return function

    def _emit_locals_block(self, builder: IRBuilder, function: Function, pool: List[Value]) -> List[Instruction]:
        """Allocas + stores + loads: mem2reg fodder."""
        slots = []
        for _ in range(self.rng.randint(2, 2 + self.size_scale // 2)):
            slot = builder.alloca(I32)
            builder.store(self._pick_value(pool), slot)
            slots.append(slot)
        for slot in slots:
            if self.rng.random() < 0.8:
                pool.append(builder.load(slot, I32))
        return slots

    def _emit_branchy_region(
        self, module: Module, function: Function, builder: IRBuilder, pool: List[Value]
    ) -> BasicBlock:
        """An if/else diamond. With some probability the condition is a
        compile-time constant (sccp/simplifycfg fodder)."""
        then_block = function.add_block(function.new_block_name("then"))
        else_block = function.add_block(function.new_block_name("else"))
        join_block = function.add_block(function.new_block_name("join"))

        if self.rng.random() < 0.4:
            # Constant condition, possibly needing constant folding to expose.
            lhs, rhs = self._const(0, 10), self._const(0, 10)
            condition = builder.icmp(self.rng.choice(_PREDICATES), lhs, rhs)
        else:
            condition = builder.icmp(
                self.rng.choice(_PREDICATES), self._pick_value(pool), self._const(0, 10)
            )
        builder.cond_br(condition, then_block, else_block)

        builder.set_insert_point(then_block)
        then_values = self._arith_chain(builder, pool, self.rng.randint(1, 3))
        builder.br(join_block)

        builder.set_insert_point(else_block)
        else_values = self._arith_chain(builder, pool, self.rng.randint(1, 3))
        builder.br(join_block)

        builder.set_insert_point(join_block)
        merged = builder.phi(I32, [(then_values[-1], then_block), (else_values[-1], else_block)])
        pool.append(merged)
        return join_block

    def _emit_counted_loop(
        self, function: Function, builder: IRBuilder, pool: List[Value], small: bool
    ) -> None:
        """A canonical single-block counted loop.

        Small loops (constant trip count <= 12) are loop-unroll fodder; larger
        loops carry loop-invariant computations for LICM and an accumulator so
        the loop is not trivially deletable.
        """
        trip_count = self.rng.randint(3, 12) if small else self.rng.randint(20, 80)
        preheader_block = builder.block
        loop_block = function.add_block(function.new_block_name("loop"))
        exit_block = function.add_block(function.new_block_name("loop.exit"))

        invariant_a = self._pick_value(pool)
        invariant_b = self._pick_value(pool)
        builder.br(loop_block)

        builder.set_insert_point(loop_block)
        induction = builder.phi(I32, [(Constant(I32, 0), preheader_block)])
        accumulator = builder.phi(I32, [(Constant(I32, 0), preheader_block)])
        # Loop-invariant computation inside the loop: LICM fodder.
        invariant = builder.binary("mul", invariant_a, invariant_b)
        invariant2 = builder.binary("add", invariant, Constant(I32, 7))
        body_value = builder.binary("add", accumulator, invariant2)
        body_value = builder.binary("add", body_value, induction)
        next_induction = builder.add(induction, Constant(I32, 1))
        condition = builder.icmp("slt", next_induction, Constant(I32, trip_count))
        builder.cond_br(condition, loop_block, exit_block)
        induction.set_phi_incoming(
            [(Constant(I32, 0), preheader_block), (next_induction, loop_block)]
        )
        accumulator.set_phi_incoming(
            [(Constant(I32, 0), preheader_block), (body_value, loop_block)]
        )

        builder.set_insert_point(exit_block)
        pool.append(body_value)

    def _emit_switch_region(
        self, function: Function, builder: IRBuilder, pool: List[Value]
    ) -> None:
        """A small switch: lowerswitch fodder."""
        num_cases = self.rng.randint(2, 4)
        case_blocks = [function.add_block(function.new_block_name("case")) for _ in range(num_cases)]
        default_block = function.add_block(function.new_block_name("default"))
        join_block = function.add_block(function.new_block_name("switch.join"))
        selector = self._pick_value(pool)
        if isinstance(selector, Constant):
            selector = builder.binary("and", self._pick_value(pool), Constant(I32, num_cases - 1))
        builder.switch(selector, default_block, [(Constant(I32, i), case_blocks[i]) for i in range(num_cases)])
        incoming = []
        for i, case_block in enumerate(case_blocks):
            builder.set_insert_point(case_block)
            value = builder.binary("add", self._pick_value(pool), Constant(I32, i * 3))
            builder.br(join_block)
            incoming.append((value, case_block))
        builder.set_insert_point(default_block)
        default_value = self._const()
        builder.br(join_block)
        incoming.append((default_value, default_block))
        builder.set_insert_point(join_block)
        pool.append(builder.phi(I32, incoming))

    def _emit_global_traffic(self, module: Module, builder: IRBuilder, pool: List[Value]) -> None:
        """Stores/loads of globals, including dead stores (DSE fodder)."""
        if not module.globals:
            return
        global_var = self.rng.choice(list(module.globals.values()))
        if global_var.is_constant_global:
            pool.append(builder.load(global_var, I32))
            return
        builder.store(self._pick_value(pool), global_var)
        if self.rng.random() < 0.6:
            # Overwrite without an intervening load: the first store is dead.
            builder.store(self._pick_value(pool), global_var)
        pool.append(builder.load(global_var, I32))

    def _make_worker(self, module: Module, index: int, helpers: List[Function]) -> Function:
        num_args = self.rng.randint(1, 3)
        # One extra, never-used argument: deadargelim fodder.
        function = Function(
            f"work{index}",
            return_type=I32,
            arg_types=[I32] * (num_args + 1),
            arg_names=[f"p{i}" for i in range(num_args)] + ["unused_arg"],
        )
        entry = function.add_block("entry")
        builder = IRBuilder(function, entry)
        pool: List[Value] = list(function.args[:num_args])

        self._emit_locals_block(builder, function, pool)
        self._arith_chain(builder, pool, self.size_scale)

        for _ in range(max(1, self.size_scale // 3)):
            region = self.rng.random()
            if region < 0.35:
                self._emit_branchy_region(module, function, builder, pool)
            elif region < 0.6:
                self._emit_counted_loop(function, builder, pool, small=self.rng.random() < 0.5)
            elif region < 0.75:
                self._emit_switch_region(function, builder, pool)
            else:
                self._arith_chain(builder, pool, self.size_scale // 2 + 1)
            self._emit_global_traffic(module, builder, pool)
            if helpers and self.rng.random() < 0.7:
                helper = self.rng.choice(helpers)
                args = [self._pick_value(pool) for _ in helper.args]
                pool.append(builder.call(helper, args, pure=True))

        result = self._pick_value(pool)
        builder.ret(result if not isinstance(result, Constant) else self._pick_value(pool))
        module.add_function(function)
        return function

    def _make_main(self, module: Module, workers: List[Function], helpers: List[Function]) -> Function:
        function = Function("main", return_type=I32, arg_types=[], arg_names=[])
        entry = function.add_block("entry")
        builder = IRBuilder(function, entry)
        pool: List[Value] = [self._const(1, 20) for _ in range(3)]
        # Runtime inputs: calls to an opaque external input() function keep a
        # core of the computation live through constant propagation, as real
        # program inputs do.
        external_input = module.function("input")
        if external_input is not None:
            for _ in range(self.rng.randint(2, 4)):
                pool.append(builder.call(external_input, [], return_type=I32))
        self._emit_locals_block(builder, function, pool)
        self._arith_chain(builder, pool, self.size_scale)
        results = []
        for worker in workers:
            args = [self._pick_value(pool) for _ in worker.args]
            results.append(builder.call(worker, args))
        for helper in helpers[:2]:
            args = [self._pick_value(pool) for _ in helper.args]
            results.append(builder.call(helper, args, pure=True))
        total: Value = results[0] if results else self._const()
        for value in results[1:]:
            total = builder.add(total, value)
        # Emit the result through an output call so the interpreter observes it.
        printf = module.function("printf")
        if printf is not None:
            builder.call(printf, [total], return_type=I32)
        builder.ret(builder.binary("and", total, Constant(I32, 255)))
        module.add_function(function)
        return function

    # -- entry point ---------------------------------------------------------------

    def generate(self) -> Module:
        """Generate the module."""
        module = Module(self.name)
        module.metadata["generator"] = "ModuleGenerator"
        module.add_function(Function("printf", return_type=I32, arg_types=[I32], arg_names=["value"]))
        module.add_function(Function("input", return_type=I32, arg_types=[], arg_names=[]))
        for i in range(self.rng.randint(2, 4)):
            module.add_global(
                GlobalVariable(
                    f"g{i}",
                    element_type=I32,
                    initializer=self.rng.randint(0, 100),
                    is_constant_global=self.rng.random() < 0.3,
                )
            )
        helpers = [self._make_helper(module, i) for i in range(self.num_helpers)]
        if self.rng.random() < 0.7:
            self._make_dead_function(module, 0)
        workers = [self._make_worker(module, i, helpers) for i in range(self.num_functions)]
        self._make_main(module, workers, helpers)
        return module


def generate_module(
    seed: int,
    size_scale: int = 6,
    num_functions: int = 3,
    num_helpers: int = 3,
    runnable: bool = True,
    name: str = "benchmark",
) -> Module:
    """Generate a deterministic module from a seed (convenience wrapper)."""
    return ModuleGenerator(
        seed=seed,
        size_scale=size_scale,
        num_functions=num_functions,
        num_helpers=num_helpers,
        runnable=runnable,
        name=name,
    ).generate()


def llvm_stress_module(seed: int, num_instructions: int = 120, name: str = "llvm-stress") -> Module:
    """Random, structurally valid, semantically meaningless IR (llvm-stress).

    A single function of straight-line random arithmetic over random constants
    and previous results, with occasional dead branches. Useful for fuzzing
    passes, and notoriously easy for optimizers to collapse — the paper's
    Table VI shows llvm-stress as an outlier dataset for exactly that reason.
    """
    rng = random.Random(seed)
    module = Module(name)
    module.metadata["generator"] = "llvm-stress"
    function = Function("stress", return_type=I32, arg_types=[I32, I32], arg_names=["a", "b"])
    entry = function.add_block("entry")
    builder = IRBuilder(function, entry)
    pool: List[Value] = list(function.args)
    block_budget = rng.randint(1, 4)
    for block_index in range(block_budget):
        for _ in range(num_instructions // block_budget):
            op = rng.choice(_INT_BINOPS + ["sdiv", "srem", "lshr", "ashr"])
            lhs = rng.choice(pool) if rng.random() < 0.7 else Constant(I32, rng.randint(-100, 100))
            rhs = rng.choice(pool) if rng.random() < 0.5 else Constant(I32, rng.randint(1, 100))
            pool.append(builder.binary(op, lhs, rhs))
        if block_index + 1 < block_budget:
            next_block = function.add_block(function.new_block_name("stress"))
            condition = builder.icmp(rng.choice(_PREDICATES), rng.choice(pool), Constant(I32, rng.randint(-5, 5)))
            dead_block = function.add_block(function.new_block_name("dead"))
            builder.cond_br(condition, next_block, dead_block)
            builder.set_insert_point(dead_block)
            builder.binary("add", rng.choice(pool), Constant(I32, 1))
            builder.br(next_block)
            builder.set_insert_point(next_block)
    builder.ret(rng.choice(pool))
    module.add_function(function)
    main = Function("main", return_type=I32, arg_types=[], arg_names=[])
    main_entry = main.add_block("entry")
    main_builder = IRBuilder(main, main_entry)
    call = main_builder.call(function, [Constant(I32, rng.randint(1, 50)), Constant(I32, rng.randint(1, 50))])
    main_builder.ret(main_builder.binary("and", call, Constant(I32, 255)))
    module.add_function(main)
    return module
