"""Benchmark datasets for the LLVM environment.

The dataset inventory matches Table I of the paper: twelve named suites plus
the csmith and llvm-stress program generators. Benchmarks are synthesized
deterministically from their URI (see :mod:`repro.llvm.datasets.generators`),
so the datasets require no downloads and arbitrary URIs within a dataset's
range always produce the same program.
"""

from repro.llvm.datasets.generators import ModuleGenerator, generate_module, llvm_stress_module
from repro.llvm.datasets.suites import (
    DATASET_SPECS,
    CBENCH_PROGRAMS,
    CHSTONE_PROGRAMS,
    LlvmSyntheticDataset,
    LlvmGeneratorDataset,
    make_llvm_datasets,
)

__all__ = [
    "CBENCH_PROGRAMS",
    "CHSTONE_PROGRAMS",
    "DATASET_SPECS",
    "LlvmGeneratorDataset",
    "LlvmSyntheticDataset",
    "ModuleGenerator",
    "generate_module",
    "llvm_stress_module",
    "make_llvm_datasets",
]
