"""The LLVM benchmark suites (Table I of the paper).

Each suite is reproduced as a dataset whose benchmarks are generated
deterministically from the benchmark URI, with a per-suite size profile so
that, e.g., cBench programs span a wide range of module sizes (the source of
the step-time spread in Fig. 6) while csmith programs are uniform
medium-sized translation units.
"""

import hashlib
from typing import Dict, Iterator, List, NamedTuple, Optional

import numpy as np

from repro.core.datasets import Benchmark, Dataset, Datasets
from repro.core.datasets.uri import BenchmarkUri
from repro.errors import BenchmarkInitError, ValidationError
from repro.llvm.datasets.generators import generate_module, llvm_stress_module

# The 23 cBench programs, as named in cbench-v1.
CBENCH_PROGRAMS: Dict[str, int] = {
    # name -> size profile (relative module size scale).
    "adpcm": 6,
    "bitcount": 3,
    "blowfish": 14,
    "bzip2": 40,
    "crc32": 2,
    "dijkstra": 5,
    "ghostscript": 120,
    "gsm": 22,
    "ispell": 30,
    "jpeg-c": 48,
    "jpeg-d": 44,
    "lame": 56,
    "patricia": 4,
    "qsort": 3,
    "rijndael": 16,
    "sha": 5,
    "stringsearch": 3,
    "stringsearch2": 3,
    "susan": 26,
    "tiff2bw": 34,
    "tiff2rgba": 36,
    "tiffdither": 33,
    "tiffmedian": 35,
}

# The 12 CHStone high-level-synthesis programs.
CHSTONE_PROGRAMS: Dict[str, int] = {
    "adpcm": 10,
    "aes": 14,
    "blowfish": 13,
    "dfadd": 8,
    "dfdiv": 9,
    "dfmul": 7,
    "dfsin": 12,
    "gsm": 11,
    "jpeg": 28,
    "mips": 9,
    "motion": 6,
    "sha": 6,
}


class DatasetSpec(NamedTuple):
    """Static description of one suite."""

    name: str
    benchmark_count: int
    description: str
    license: str
    size_scale_range: tuple
    num_functions_range: tuple
    runnable: bool = False
    named_programs: Optional[Dict[str, int]] = None
    sort_order: int = 0


# Benchmark counts follow Table I (CompilerGym column).
DATASET_SPECS: List[DatasetSpec] = [
    DatasetSpec(
        "benchmark://anghabench-v1", 1_041_333,
        "Compile-only C/C++ functions extracted from GitHub (AnghaBench)",
        "Unknown", (2, 8), (1, 3),
    ),
    DatasetSpec(
        "benchmark://blas-v0", 300,
        "Basic Linear Algebra Subprograms routines", "BSD 3-Clause", (4, 12), (1, 3),
    ),
    DatasetSpec(
        "benchmark://cbench-v1", 23,
        "Runnable C benchmarks (cBench)", "BSD 3-Clause", (2, 120), (2, 6),
        runnable=True, named_programs=CBENCH_PROGRAMS, sort_order=-1,
    ),
    DatasetSpec(
        "benchmark://chstone-v0", 12,
        "Benchmarks for C-based high-level synthesis (CHStone)", "Mixed", (6, 28), (2, 5),
        named_programs=CHSTONE_PROGRAMS,
    ),
    DatasetSpec(
        "benchmark://clgen-v0", 996,
        "Synthetically generated OpenCL kernels (CLgen)", "GPL v3", (2, 6), (1, 2),
    ),
    DatasetSpec(
        "benchmark://github-v0", 49_738,
        "C/C++ objects mined from GitHub", "Mixed", (3, 20), (1, 5),
    ),
    DatasetSpec(
        "benchmark://linux-v0", 13_894,
        "Compile-only object files from the Linux kernel", "GPL v2", (4, 24), (2, 6),
    ),
    DatasetSpec(
        "benchmark://mibench-v1", 40,
        "Embedded benchmark suite (MiBench)", "BSD", (4, 30), (2, 5),
    ),
    DatasetSpec(
        "benchmark://npb-v0", 122,
        "NAS Parallel Benchmarks", "NASA Open Source", (8, 36), (2, 6),
    ),
    DatasetSpec(
        "benchmark://opencv-v0", 442,
        "Object files from OpenCV", "Apache 2.0", (6, 30), (2, 6),
    ),
    DatasetSpec(
        "benchmark://poj104-v1", 49_816,
        "Student programming-contest solutions (POJ-104)", "Unknown", (2, 10), (1, 3),
    ),
    DatasetSpec(
        "benchmark://tensorflow-v0", 1_985,
        "Object files from TensorFlow", "Apache 2.0", (6, 32), (2, 6),
    ),
]


def _stable_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "little")


def _make_differential_testing_callback(reference_module):
    """Build a semantics-validation callback: differential testing against the
    unoptimized module's interpreter output."""

    def callback(env):
        from repro.llvm.interpreter import ExecutionError, run_module
        from repro.llvm.ir.parser import parse_module

        errors = []
        try:
            expected = run_module(reference_module, max_steps=500_000)
        except ExecutionError as error:
            return [ValidationError(type="Reference execution failed", data={"error": str(error)})]
        try:
            optimized_ir = env.observation["Ir"]
            optimized = parse_module(optimized_ir)
            actual = run_module(optimized, max_steps=500_000)
        except ExecutionError as error:
            return [ValidationError(type="Optimized program crashed", data={"error": str(error)})]
        except Exception as error:  # noqa: BLE001 - malformed IR is a validation failure
            return [ValidationError(type="Optimized program is malformed", data={"error": str(error)})]
        if actual != expected:
            errors.append(
                ValidationError(
                    type="Differential test failed: output mismatch",
                    data={
                        "expected_return": expected.return_value,
                        "actual_return": actual.return_value,
                    },
                )
            )
        return errors

    return callback


class LlvmSyntheticDataset(Dataset):
    """A finite suite whose benchmarks are generated from their URI."""

    def __init__(self, spec: DatasetSpec):
        super().__init__(
            name=spec.name,
            description=spec.description,
            license=spec.license,
            benchmark_count=spec.benchmark_count,
            sort_order=spec.sort_order,
            validatable="Yes" if spec.runnable else "No",
        )
        self.spec = spec

    def benchmark_uris(self) -> Iterator[str]:
        if self.spec.named_programs:
            for program in sorted(self.spec.named_programs):
                yield f"{self.name}/{program}"
        else:
            for index in range(self.spec.benchmark_count):
                yield f"{self.name}/{index}"

    def _profile(self, path: str) -> tuple:
        """Per-benchmark generator parameters derived from the URI."""
        digest = _stable_hash(f"{self.name}/{path}")
        lo, hi = self.spec.size_scale_range
        flo, fhi = self.spec.num_functions_range
        if self.spec.named_programs and path in self.spec.named_programs:
            size_scale = self.spec.named_programs[path]
        else:
            size_scale = lo + digest % max(1, hi - lo + 1)
        num_functions = flo + (digest >> 16) % max(1, fhi - flo + 1)
        return digest, size_scale, num_functions

    def benchmark_from_parsed_uri(self, uri: BenchmarkUri) -> Benchmark:
        path = uri.path
        if not path:
            raise BenchmarkInitError(f"No benchmark specified: {uri}")
        if self.spec.named_programs:
            if path not in self.spec.named_programs:
                raise LookupError(f"Unknown benchmark: {uri}")
        else:
            if not path.isdigit() or not 0 <= int(path) < self.spec.benchmark_count:
                raise LookupError(f"Unknown benchmark: {uri}")
        seed, size_scale, num_functions = self._profile(path)
        module = generate_module(
            seed=seed,
            size_scale=size_scale,
            num_functions=num_functions,
            num_helpers=2 + seed % 3,
            runnable=self.spec.runnable,
            name=f"{self._uri.dataset}/{path}",
        )
        benchmark = Benchmark(uri=str(uri), program=module)
        if self.spec.runnable:
            benchmark.dynamic_config["runnable"] = True
            benchmark.add_validation_callback(_make_differential_testing_callback(module.clone()))
        return benchmark

    def _random_benchmark(self, random_state: np.random.Generator) -> Benchmark:
        if self.spec.named_programs:
            names = sorted(self.spec.named_programs)
            choice = names[int(random_state.integers(len(names)))]
        else:
            choice = str(int(random_state.integers(self.spec.benchmark_count)))
        return self.benchmark(f"{self.name}/{choice}")


class LlvmGeneratorDataset(Dataset):
    """An unbounded program-generator dataset (csmith, llvm-stress).

    Benchmarks are addressed by 32-bit seed: ``generator://csmith-v0/42``.
    """

    def __init__(self, name: str, description: str, generator: str):
        super().__init__(
            name=name,
            description=description,
            license="NCSA" if "llvm" in name else "BSD",
            benchmark_count=0,
            validatable="Yes" if generator == "csmith" else "No",
        )
        self.generator = generator
        self.seed_max = 2**32

    def benchmark_uris(self) -> Iterator[str]:
        for seed in range(self.seed_max):
            yield f"{self.name}/{seed}"

    def benchmark_from_parsed_uri(self, uri: BenchmarkUri) -> Benchmark:
        if not uri.path.isdigit():
            raise LookupError(f"Generator benchmarks are addressed by integer seed: {uri}")
        seed = int(uri.path)
        if not 0 <= seed < self.seed_max:
            raise LookupError(f"Seed out of range: {seed}")
        if self.generator == "csmith":
            module = generate_module(
                seed=seed,
                size_scale=5 + seed % 8,
                num_functions=2 + seed % 3,
                num_helpers=2,
                runnable=True,
                name=f"csmith/{seed}",
            )
            benchmark = Benchmark(uri=str(uri), program=module)
            benchmark.dynamic_config["runnable"] = True
            benchmark.add_validation_callback(_make_differential_testing_callback(module.clone()))
            return benchmark
        module = llvm_stress_module(seed=seed, num_instructions=80 + seed % 120)
        return Benchmark(uri=str(uri), program=module)

    def _random_benchmark(self, random_state: np.random.Generator) -> Benchmark:
        return self.benchmark(f"{self.name}/{int(random_state.integers(self.seed_max))}")


def make_llvm_datasets() -> Datasets:
    """Construct the full dataset inventory of the LLVM environment."""
    datasets = Datasets()
    for spec in DATASET_SPECS:
        datasets.add(LlvmSyntheticDataset(spec))
    datasets.add(
        LlvmGeneratorDataset(
            "generator://csmith-v0",
            "Random runnable C programs (Csmith-style generator, 32-bit seed space)",
            generator="csmith",
        )
    )
    datasets.add(
        LlvmGeneratorDataset(
            "generator://llvm-stress-v0",
            "Random structurally-valid IR (llvm-stress-style generator, 32-bit seed space)",
            generator="llvm-stress",
        )
    )
    return datasets
