"""Lowering and utility passes: -lowerswitch, -loweratomic, -lowerinvoke,
-strip, -break-crit-edges, and other structural canonicalizations."""

from typing import List

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.cfg import predecessors
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import I1, VOID
from repro.llvm.ir.values import Constant
from repro.llvm.passes.utils import replace_phi_incoming_block


def lower_switch(module: Module) -> bool:
    """-lowerswitch: expand switch instructions into chains of conditional
    branches. This typically *increases* instruction count — one of several
    actions with negative code-size reward."""
    changed = False
    for function in module.defined_functions():
        for block in list(function.blocks):
            terminator = block.terminator
            if terminator is None or terminator.opcode != "switch":
                continue
            value = terminator.operands[0]
            default = terminator.operands[1]
            cases = [
                (terminator.operands[i], terminator.operands[i + 1])
                for i in range(2, len(terminator.operands), 2)
            ]
            block.instructions.pop()  # Drop the switch.
            current = block
            for index, (case_const, case_block) in enumerate(cases):
                compare = Instruction(
                    "icmp",
                    [value, case_const],
                    type=I1,
                    name=function.new_value_name("switch.cmp"),
                    attrs={"predicate": "eq"},
                )
                current.append(compare)
                if index + 1 < len(cases):
                    next_test = BasicBlock(function.new_block_name("switch.test"))
                    next_test.parent = function
                    function.blocks.insert(function.blocks.index(current) + 1, next_test)
                    current.append(Instruction("br", [compare, case_block, next_test], type=VOID))
                    replace_phi_incoming_block(case_block, block, current)
                    current = next_test
                else:
                    current.append(Instruction("br", [compare, case_block, default], type=VOID))
                    replace_phi_incoming_block(case_block, block, current)
                    replace_phi_incoming_block(default, block, current)
            if not cases:
                current.append(Instruction("br", [default], type=VOID))
            changed = True
    return changed


def break_critical_edges(module: Module) -> bool:
    """-break-crit-edges: split edges from multi-successor blocks into
    multi-predecessor blocks by inserting an empty forwarding block."""
    changed = False
    for function in module.defined_functions():
        preds = predecessors(function)
        edges = []
        for block in function.blocks:
            successors = block.successors()
            if len(successors) < 2:
                continue
            for successor in successors:
                if len(preds.get(successor, [])) >= 2:
                    edges.append((block, successor))
        for source, destination in edges:
            middle = BasicBlock(function.new_block_name("crit_edge"))
            middle.parent = function
            middle.append(Instruction("br", [destination], type=VOID))
            function.blocks.insert(function.blocks.index(destination), middle)
            terminator = source.terminator
            terminator.replace_successor(destination, middle)
            replace_phi_incoming_block(destination, source, middle)
            changed = True
    return changed


def lower_atomic(module: Module) -> bool:
    """-loweratomic: the IR has no atomic operations; never fires."""
    del module
    return False


def lower_invoke(module: Module) -> bool:
    """-lowerinvoke: the IR has no exception handling; never fires."""
    del module
    return False


def lower_expect(module: Module) -> bool:
    """-lower-expect: the IR has no llvm.expect intrinsic; never fires."""
    del module
    return False


def strip_metadata(module: Module) -> bool:
    """-strip: remove module metadata and call annotations."""
    changed = False
    if module.metadata:
        module.metadata.clear()
        changed = True
    for function in module.defined_functions():
        for inst in function.instructions():
            if inst.attrs.pop("debug", None) is not None:
                changed = True
    return changed


def strip_debug_declare(module: Module) -> bool:
    """-strip-debug-declare: alias of -strip for this IR."""
    return strip_metadata(module)


def canonicalize_aliases(module: Module) -> bool:
    """-canonicalize-aliases: the IR has no aliases; never fires."""
    del module
    return False


def name_anon_globals(module: Module) -> bool:
    """-name-anon-globals: give anonymous globals a name. Generated globals
    are always named, so this never fires."""
    del module
    return False


def verify_pass(module: Module) -> bool:
    """-verify: run the IR verifier as an action (never modifies the module)."""
    from repro.llvm.ir.verifier import verify_module

    verify_module(module, raise_on_error=False)
    return False


def barrier(module: Module) -> bool:
    """-barrier: pass-manager barrier; has no effect on the module."""
    del module
    return False
