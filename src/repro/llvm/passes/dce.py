"""Dead code elimination passes: -dce, -die, -adce."""

from typing import Set

from repro.llvm.ir.function import Function
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Value
from repro.llvm.passes.utils import collect_uses, is_trivially_dead


def dead_instruction_elimination(module: Module) -> bool:
    """-die: a single sweep removing trivially dead instructions."""
    changed = False
    for function in module.defined_functions():
        uses = collect_uses(function)
        for block in function.blocks:
            for inst in list(block.instructions):
                if is_trivially_dead(inst, uses):
                    block.remove(inst)
                    changed = True
    return changed


def dead_code_elimination(module: Module) -> bool:
    """-dce: iterate trivially-dead removal to a fixpoint."""
    changed = False
    while dead_instruction_elimination(module):
        changed = True
    return changed


def _aggressive_dce_function(function: Function) -> bool:
    """Mark-and-sweep DCE: everything not transitively required by a
    side-effecting or terminator instruction is removed.

    Unlike iterative trivial DCE this removes dead cycles (e.g. a phi that
    only feeds an add that only feeds the phi).
    """
    live: Set[Value] = set()
    worklist = []
    for block in function.blocks:
        for inst in block.instructions:
            if inst.is_terminator or inst.has_side_effects():
                live.add(inst)
                worklist.append(inst)
    while worklist:
        inst = worklist.pop()
        for operand in inst.operands:
            if operand not in live and hasattr(operand, "opcode"):
                live.add(operand)
                worklist.append(operand)
    changed = False
    for block in function.blocks:
        for inst in list(block.instructions):
            if inst not in live:
                block.remove(inst)
                changed = True
    return changed


def aggressive_dce(module: Module) -> bool:
    """-adce."""
    changed = False
    for function in module.defined_functions():
        if _aggressive_dce_function(function):
            changed = True
    return changed
