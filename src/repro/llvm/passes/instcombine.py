"""Peephole instruction combining: -instcombine, -instsimplify, -reassociate,
-aggressive-instcombine, -div-rem-pairs."""

from typing import Optional

from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Constant, Value
from repro.llvm.passes.utils import fold_instruction, replace_all_uses


def _is_const(value: Value, number=None) -> bool:
    if not isinstance(value, Constant):
        return False
    return True if number is None else value.value == number


def _simplify(inst: Instruction) -> Optional[Value]:
    """Return a simpler value equivalent to ``inst``, or None."""
    folded = fold_instruction(inst)
    if folded is not None:
        return folded

    op = inst.opcode
    if inst.is_binary:
        lhs, rhs = inst.operands
        if op == "add":
            if _is_const(rhs, 0):
                return lhs
            if _is_const(lhs, 0):
                return rhs
        if op == "sub":
            if _is_const(rhs, 0):
                return lhs
            if lhs is rhs:
                return Constant(inst.type, 0)
        if op == "mul":
            if _is_const(rhs, 1):
                return lhs
            if _is_const(lhs, 1):
                return rhs
            if _is_const(rhs, 0) or _is_const(lhs, 0):
                return Constant(inst.type, 0)
        if op in ("sdiv", "udiv"):
            if _is_const(rhs, 1):
                return lhs
            if lhs is rhs and not _is_const(rhs, 0):
                return Constant(inst.type, 1)
        if op in ("srem", "urem") and _is_const(rhs, 1):
            return Constant(inst.type, 0)
        if op == "and":
            if lhs is rhs:
                return lhs
            if _is_const(rhs, 0) or _is_const(lhs, 0):
                return Constant(inst.type, 0)
        if op == "or":
            if lhs is rhs:
                return lhs
            if _is_const(rhs, 0):
                return lhs
            if _is_const(lhs, 0):
                return rhs
        if op == "xor":
            if lhs is rhs:
                return Constant(inst.type, 0)
            if _is_const(rhs, 0):
                return lhs
            if _is_const(lhs, 0):
                return rhs
        if op in ("shl", "lshr", "ashr") and _is_const(rhs, 0):
            return lhs
        if op == "fadd" and _is_const(rhs, 0.0):
            return lhs
        if op == "fmul":
            if _is_const(rhs, 1.0):
                return lhs
            if _is_const(lhs, 1.0):
                return rhs
        if op == "fsub" and _is_const(rhs, 0.0):
            return lhs

    if op == "icmp" and len(inst.operands) == 2:
        lhs, rhs = inst.operands
        if lhs is rhs:
            predicate = inst.attrs.get("predicate", "eq")
            if predicate in ("eq", "sle", "sge", "ule", "uge"):
                return Constant(inst.type, 1)
            if predicate in ("ne", "slt", "sgt", "ult", "ugt"):
                return Constant(inst.type, 0)

    if op == "select":
        cond, if_true, if_false = inst.operands
        if if_true is if_false:
            return if_true
        if isinstance(cond, Constant):
            return if_true if cond.value else if_false

    return None


def _canonicalize_commutative(inst: Instruction) -> bool:
    """Move constants to the right-hand side of commutative operations."""
    if inst.is_commutative and len(inst.operands) == 2:
        lhs, rhs = inst.operands
        if isinstance(lhs, Constant) and not isinstance(rhs, Constant):
            inst.operands = [rhs, lhs]
            return True
    return False


def _instcombine_function(function: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if _canonicalize_commutative(inst):
                    changed = True
                simplified = _simplify(inst)
                if simplified is not None and simplified is not inst:
                    replace_all_uses(function, inst, simplified)
                    block.remove(inst)
                    changed = True
                    progress = True
    return changed


def instruction_combining(module: Module) -> bool:
    """-instcombine."""
    changed = False
    for function in module.defined_functions():
        if _instcombine_function(function):
            changed = True
    return changed


def instruction_simplify(module: Module) -> bool:
    """-instsimplify: a single, non-iterative simplification sweep."""
    changed = False
    for function in module.defined_functions():
        for block in function.blocks:
            for inst in list(block.instructions):
                simplified = _simplify(inst)
                if simplified is not None and simplified is not inst:
                    replace_all_uses(function, inst, simplified)
                    block.remove(inst)
                    changed = True
    return changed


def aggressive_instcombine(module: Module) -> bool:
    """-aggressive-instcombine: instcombine run to a global fixpoint."""
    changed = False
    while instruction_combining(module):
        changed = True
    return changed


def reassociate(module: Module) -> bool:
    """-reassociate: reassociate commutative chains to expose constant folding.

    ``(x + c1) + c2`` becomes ``x + (c1 + c2)`` (and similarly for mul/and/or/
    xor), enabling instcombine/constprop to fold the constants.
    """
    changed = False
    for function in module.defined_functions():
        for block in function.blocks:
            for inst in block.instructions:
                if not inst.is_commutative or len(inst.operands) != 2:
                    continue
                lhs, rhs = inst.operands
                if not isinstance(rhs, Constant):
                    continue
                if (
                    isinstance(lhs, Instruction)
                    and lhs.opcode == inst.opcode
                    and len(lhs.operands) == 2
                    and isinstance(lhs.operands[1], Constant)
                ):
                    inner = Instruction(
                        inst.opcode, [lhs.operands[1], rhs], type=inst.type
                    )
                    folded = fold_instruction(inner)
                    if folded is not None:
                        inst.operands = [lhs.operands[0], folded]
                        changed = True
    return changed


def div_rem_pairs(module: Module) -> bool:
    """-div-rem-pairs: hoist matching sdiv/srem pairs next to each other.

    On this IR the transformation is a reordering with no effect on the cost
    metrics; it reports a change only when a pair is actually found, so it is
    usually a no-op action.
    """
    changed = False
    for function in module.defined_functions():
        for block in function.blocks:
            divs = {}
            for inst in block.instructions:
                if inst.opcode in ("sdiv", "udiv"):
                    divs[(id(inst.operands[0]), id(inst.operands[1]))] = inst
            for inst in list(block.instructions):
                if inst.opcode in ("srem", "urem"):
                    key = (id(inst.operands[0]), id(inst.operands[1]))
                    partner = divs.get(key)
                    if partner is not None and partner.parent is block:
                        index = block.instructions.index(partner)
                        if block.instructions.index(inst) != index + 1:
                            block.remove(inst)
                            block.insert(index + 1, inst)
                            changed = True
    return changed
