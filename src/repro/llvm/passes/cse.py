"""Redundancy elimination: -early-cse, -gvn, -newgvn, -sink."""

from typing import Dict, Tuple

from repro.llvm.ir.cfg import dominates, dominators, reverse_postorder
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Constant, Value
from repro.llvm.passes.utils import collect_uses, is_pure, replace_all_uses


def _operand_key(value: Value):
    if isinstance(value, Constant):
        return ("const", value.type.name, value.value)
    return ("val", id(value))


def _value_key(inst: Instruction) -> Tuple:
    """A hashable key identifying the computation an instruction performs."""
    operands = tuple(_operand_key(op) for op in inst.operands)
    if inst.is_commutative and len(operands) == 2:
        operands = tuple(sorted(operands))
    return (
        inst.opcode,
        inst.attrs.get("predicate"),
        inst.attrs.get("callee"),
        str(inst.attrs.get("element_type", "")),
        inst.type.name,
        operands,
    )


def _cse_block_local(function: Function) -> bool:
    """Block-local common subexpression elimination (early-cse)."""
    changed = False
    for block in function.blocks:
        available: Dict[Tuple, Instruction] = {}
        for inst in list(block.instructions):
            if not is_pure(inst) or not inst.has_result:
                continue
            key = _value_key(inst)
            existing = available.get(key)
            if existing is not None:
                replace_all_uses(function, inst, existing)
                block.remove(inst)
                changed = True
            else:
                available[key] = inst
    return changed


def early_cse(module: Module) -> bool:
    """-early-cse: block-local redundancy elimination."""
    changed = False
    for function in module.defined_functions():
        if _cse_block_local(function):
            changed = True
    return changed


def _gvn_function(function: Function) -> bool:
    """Dominance-based global value numbering.

    An instruction is redundant if an identical computation exists in a block
    that dominates it (or earlier in the same block).
    """
    changed = False
    dom = dominators(function)
    order = reverse_postorder(function)
    leader: Dict[Tuple, Instruction] = {}
    for block in order:
        for inst in list(block.instructions):
            if not is_pure(inst) or not inst.has_result:
                continue
            key = _value_key(inst)
            existing = leader.get(key)
            if existing is not None and existing.parent is not None:
                same_block = existing.parent is block
                if same_block or dominates(dom, existing.parent, block):
                    replace_all_uses(function, inst, existing)
                    block.remove(inst)
                    changed = True
                    continue
            leader[key] = inst
    return changed


def global_value_numbering(module: Module) -> bool:
    """-gvn."""
    changed = False
    for function in module.defined_functions():
        if _gvn_function(function):
            changed = True
    return changed


def new_gvn(module: Module) -> bool:
    """-newgvn: iterate GVN to a fixpoint (value numbers refine each round)."""
    changed = False
    while global_value_numbering(module):
        changed = True
    return changed


def sink(module: Module) -> bool:
    """-sink: move pure computations into the single successor block that uses
    them, reducing work on paths that do not need the value."""
    changed = False
    for function in module.defined_functions():
        uses = collect_uses(function)
        for block in function.blocks:
            successors = block.successors()
            if len(successors) != 2:
                continue
            for inst in list(block.instructions):
                if not is_pure(inst) or not inst.has_result:
                    continue
                users = uses.get(inst, [])
                if not users:
                    continue
                user_blocks = {user.parent for user, _ in users}
                if len(user_blocks) != 1:
                    continue
                (target,) = user_blocks
                if target is block or target not in successors:
                    continue
                # Do not sink into a block with multiple predecessors (the
                # value would not dominate all paths into it).
                from repro.llvm.ir.cfg import predecessors as _preds

                if len(_preds(function)[target]) != 1:
                    continue
                if any(user.opcode == "phi" for user, _ in users):
                    continue
                block.remove(inst)
                target.insert(len(target.phis()), inst)
                changed = True
    return changed
