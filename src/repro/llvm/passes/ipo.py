"""Interprocedural passes: -inline, -always-inline, -partial-inliner,
-deadargelim, -globaldce, -globalopt, -mergefunc, -tailcallelim,
-strip-dead-prototypes, -argpromotion."""

from typing import Dict, List, Optional, Set

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import VOID
from repro.llvm.ir.values import Argument, Constant, GlobalVariable, Value
from repro.llvm.passes.utils import collect_uses, replace_all_uses, replace_phi_incoming_block

# Callee size limits, mirroring LLVM's inline cost thresholds.
INLINE_THRESHOLD = 40
PARTIAL_INLINE_THRESHOLD = 80


def _is_recursive(function: Function) -> bool:
    return any(
        inst.opcode == "call" and inst.attrs.get("callee") == function.name
        for inst in function.instructions()
    )


def _inline_call_site(caller: Function, call: Instruction, callee: Function) -> None:
    """Inline one call site. The callee body is cloned into the caller."""
    block = call.parent
    call_index = block.instructions.index(call)

    # Split the call block: everything after the call moves to a continuation.
    continuation = BasicBlock(caller.new_block_name("inline.cont"))
    trailing = block.instructions[call_index + 1 :]
    block.instructions = block.instructions[:call_index]
    for inst in trailing:
        inst.parent = continuation
        continuation.instructions.append(inst)
    # Successor phis that named the original block as the incoming edge now
    # receive control from the continuation block instead.
    for successor in continuation.successors():
        replace_phi_incoming_block(successor, block, continuation)

    # Clone the callee body.
    value_map: Dict[Value, Value] = {}
    for arg, operand in zip(callee.args, call.operands):
        value_map[arg] = operand
    block_map: Dict[BasicBlock, BasicBlock] = {}
    cloned_blocks: List[BasicBlock] = []
    for callee_block in callee.blocks:
        clone = BasicBlock(caller.new_block_name(f"inl.{callee_block.name}"))
        block_map[callee_block] = clone
        cloned_blocks.append(clone)
    cloned_instructions: List[Instruction] = []
    for callee_block in callee.blocks:
        clone_block = block_map[callee_block]
        for inst in callee_block.instructions:
            clone = inst.clone()
            if clone.name:
                clone.name = caller.new_value_name(f"inl{clone.name}")
            clone_block.append(clone)
            value_map[inst] = clone
            cloned_instructions.append(clone)
    # Remap operands of the clones (two-pass to handle forward references).
    for clone in cloned_instructions:
        clone.operands = [
            block_map.get(op, value_map.get(op, op)) if not isinstance(op, BasicBlock) else block_map.get(op, op)
            for op in clone.operands
        ]

    # Rewrite cloned returns into branches to the continuation, collecting
    # returned values for the call result.
    returned: List = []
    for clone_block in cloned_blocks:
        terminator = clone_block.terminator
        if terminator is not None and terminator.opcode == "ret":
            value = terminator.operands[0] if terminator.operands else None
            index = clone_block.instructions.index(terminator)
            branch = Instruction("br", [continuation], type=VOID)
            branch.parent = clone_block
            clone_block.instructions[index] = branch
            returned.append((value, clone_block))

    # Wire the call block into the cloned entry.
    entry_clone = block_map[callee.entry]
    block.append(Instruction("br", [entry_clone], type=VOID))

    # Splice the new blocks into the caller's block list right after the call
    # block (before rewriting call-result uses, so that uses in the
    # continuation and cloned blocks are rewritten too).
    insert_at = caller.blocks.index(block) + 1
    for offset, clone_block in enumerate(cloned_blocks):
        clone_block.parent = caller
        caller.blocks.insert(insert_at + offset, clone_block)
    continuation.parent = caller
    caller.blocks.insert(insert_at + len(cloned_blocks), continuation)

    # Replace uses of the call result.
    if call.has_result and call.name:
        values = [value for value, _ in returned if value is not None]
        if len(returned) == 1 and values:
            replacement: Value = values[0]
        elif values:
            phi = Instruction("phi", type=call.type, name=caller.new_value_name("inlret"))
            phi.set_phi_incoming([(value, source) for value, source in returned])
            continuation.insert(0, phi)
            replacement = phi
        else:
            replacement = Constant(call.type, 0)
        replace_all_uses(caller, call, replacement)


def _inline_functions(module: Module, threshold: int, require_attribute: Optional[str] = None) -> bool:
    changed = False
    # Collect call sites up front; inlining mutates the functions being walked.
    call_sites = []
    for caller in module.defined_functions():
        for inst in caller.instructions():
            if inst.opcode != "call":
                continue
            callee = module.function(inst.attrs.get("callee", ""))
            if callee is None or callee.is_declaration or callee is caller:
                continue
            if _is_recursive(callee):
                continue
            if "noinline" in callee.attributes:
                continue
            if require_attribute and require_attribute not in callee.attributes:
                continue
            if len(callee) > threshold and "alwaysinline" not in callee.attributes:
                continue
            call_sites.append((caller, inst, callee))
    for caller, call, callee in call_sites:
        if call.parent is None:  # Removed by an earlier inline in this run.
            continue
        _inline_call_site(caller, call, callee)
        changed = True
    return changed


def inline_functions(module: Module) -> bool:
    """-inline: inline small functions into their callers."""
    return _inline_functions(module, INLINE_THRESHOLD)


def always_inline(module: Module) -> bool:
    """-always-inline: inline only functions marked ``alwaysinline``."""
    return _inline_functions(module, 0, require_attribute="alwaysinline")


def partial_inliner(module: Module) -> bool:
    """-partial-inliner: a higher-threshold inliner (outlining of cold regions
    is not modelled)."""
    return _inline_functions(module, PARTIAL_INLINE_THRESHOLD)


def dead_argument_elimination(module: Module) -> bool:
    """-deadargelim: drop unused arguments of internal functions and update
    every call site."""
    changed = False
    for function in module.defined_functions():
        if function.name == "main" or "noinline" in function.attributes:
            pass
        if function.name == "main":
            continue
        uses = collect_uses(function)
        dead_indices = [
            index for index, arg in enumerate(function.args) if not uses.get(arg)
        ]
        if not dead_indices:
            continue
        keep = [i for i in range(len(function.args)) if i not in dead_indices]
        function.args = [function.args[i] for i in keep]
        for caller in module.defined_functions():
            for inst in caller.instructions():
                if inst.opcode == "call" and inst.attrs.get("callee") == function.name:
                    if len(inst.operands) > len(keep):
                        inst.operands = [inst.operands[i] for i in keep if i < len(inst.operands)]
        changed = True
    return changed


def _referenced_functions(module: Module) -> Set[str]:
    referenced = {"main"}
    for function in module.defined_functions():
        for inst in function.instructions():
            if inst.opcode == "call":
                referenced.add(inst.attrs.get("callee", ""))
            for operand in inst.operands:
                if isinstance(operand, Function):
                    referenced.add(operand.name)
    return referenced


def global_dce(module: Module) -> bool:
    """-globaldce: remove unreferenced functions and globals."""
    changed = False
    referenced = _referenced_functions(module)
    for name in list(module.functions):
        function = module.functions[name]
        if name not in referenced and not function.is_declaration:
            del module.functions[name]
            changed = True
        elif name not in referenced and function.is_declaration:
            del module.functions[name]
            changed = True
    used_globals: Set[str] = set()
    for function in module.defined_functions():
        for inst in function.instructions():
            for operand in inst.operands:
                if isinstance(operand, GlobalVariable):
                    used_globals.add(operand.name)
    for name in list(module.globals):
        if name not in used_globals:
            del module.globals[name]
            changed = True
    return changed


def strip_dead_prototypes(module: Module) -> bool:
    """-strip-dead-prototypes: remove unused external function declarations."""
    changed = False
    referenced = _referenced_functions(module)
    for name in list(module.functions):
        if module.functions[name].is_declaration and name not in referenced:
            del module.functions[name]
            changed = True
    return changed


def global_opt(module: Module) -> bool:
    """-globalopt: replace loads of never-written globals with their initializer."""
    changed = False
    written: Set[str] = set()
    escaped: Set[str] = set()
    for function in module.defined_functions():
        for inst in function.instructions():
            for index, operand in enumerate(inst.operands):
                if not isinstance(operand, GlobalVariable):
                    continue
                if inst.opcode == "store" and index == 1:
                    written.add(operand.name)
                elif inst.opcode not in ("load",):
                    escaped.add(operand.name)
    for function in module.defined_functions():
        for block in function.blocks:
            for inst in list(block.instructions):
                if inst.opcode != "load":
                    continue
                pointer = inst.operands[0]
                if (
                    isinstance(pointer, GlobalVariable)
                    and pointer.name not in written
                    and pointer.name not in escaped
                    and pointer.array_size == 1
                ):
                    constant = Constant(inst.type, pointer.initializer)
                    replace_all_uses(function, inst, constant)
                    block.remove(inst)
                    changed = True
    return changed


def merge_functions(module: Module) -> bool:
    """-mergefunc: merge structurally identical functions, redirecting calls."""
    from repro.llvm.ir.printer import print_function

    changed = False
    signatures: Dict[str, Function] = {}
    for function in list(module.defined_functions()):
        if function.name == "main":
            continue
        body = print_function(function)
        # Normalize the function's own name out of the signature.
        normalized = body.replace(f"@{function.name}(", "@__self__(")
        canonical = signatures.get(normalized)
        if canonical is None:
            signatures[normalized] = function
            continue
        # Redirect every call of the duplicate to the canonical function.
        for caller in module.defined_functions():
            for inst in caller.instructions():
                if inst.opcode == "call" and inst.attrs.get("callee") == function.name:
                    inst.attrs["callee"] = canonical.name
        del module.functions[function.name]
        changed = True
    return changed


def tail_call_elimination(module: Module) -> bool:
    """-tailcallelim: mark calls in tail position.

    The IR has no dedicated tail-call lowering, so this only annotates the
    call; it reports a change the first time a tail call is marked.
    """
    changed = False
    for function in module.defined_functions():
        for block in function.blocks:
            instructions = block.instructions
            for index, inst in enumerate(instructions[:-1]):
                if inst.opcode != "call" or inst.attrs.get("tail"):
                    continue
                next_inst = instructions[index + 1]
                is_tail = next_inst.opcode == "ret" and (
                    not next_inst.operands or next_inst.operands[0] is inst
                )
                if is_tail:
                    inst.attrs["tail"] = True
                    changed = True
    return changed


def argument_promotion(module: Module) -> bool:
    """-argpromotion: promote pointer arguments to value arguments. Pointer
    arguments are rare in the generated benchmarks, so this is typically a
    no-op action."""
    del module
    return False
