"""Control-flow graph simplification: -simplifycfg, -jump-threading,
-correlated-propagation, -mergereturn."""

from typing import List

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.cfg import predecessors, reachable_blocks
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import VOID
from repro.llvm.ir.values import Constant
from repro.llvm.passes.constants import _fold_constant_branches_function
from repro.llvm.passes.utils import (
    remove_phi_incoming,
    replace_all_uses,
    replace_phi_incoming_block,
)


def _remove_unreachable_blocks(function: Function) -> bool:
    reachable = reachable_blocks(function)
    dead = [block for block in function.blocks if block not in reachable]
    if not dead:
        return False
    for block in dead:
        for successor in block.successors():
            if successor in reachable:
                remove_phi_incoming(successor, block)
        function.remove_block(block)
    return True


def _merge_single_successor_blocks(function: Function) -> bool:
    """Merge a block into its unique predecessor when that predecessor has a
    single successor (straight-line control flow)."""
    changed = False
    restart = True
    while restart:
        restart = False
        preds = predecessors(function)
        for block in list(function.blocks):
            if block is function.entry:
                continue
            block_preds = preds.get(block, [])
            if len(block_preds) != 1:
                continue
            pred = block_preds[0]
            if len(pred.successors()) != 1 or pred.successors()[0] is not block:
                continue
            if pred is block:
                continue
            # Phis in the block have a single incoming value: fold them.
            for phi in list(block.phis()):
                incoming = list(phi.phi_incoming())
                replace_all_uses(function, phi, incoming[0][0])
                block.remove(phi)
            # Splice instructions: drop the predecessor's terminator, move the
            # block's instructions in.
            pred.instructions.pop()
            for inst in block.instructions:
                inst.parent = pred
                pred.instructions.append(inst)
            block.instructions = []
            # Successors of the merged block now flow from pred.
            for successor in pred.successors():
                replace_phi_incoming_block(successor, block, pred)
            function.remove_block(block)
            changed = True
            restart = True
            break
    return changed


def _skip_empty_blocks(function: Function) -> bool:
    """Forward branches that target a block containing only ``br label %next``.

    The empty block is bypassed: predecessors branch directly to its
    destination.
    """
    changed = False
    preds = predecessors(function)
    for block in list(function.blocks):
        if block is function.entry:
            continue
        if len(block.instructions) != 1:
            continue
        terminator = block.terminator
        if terminator is None or terminator.opcode != "br" or len(terminator.operands) != 1:
            continue
        target = terminator.operands[0]
        if target is block:
            continue
        # Skip if the destination has phis: rewriting incoming edges correctly
        # would require merging values from multiple predecessors.
        if target.phis():
            continue
        block_preds = preds.get(block, [])
        if not block_preds:
            continue
        for pred in block_preds:
            pred_term = pred.terminator
            if pred_term is not None:
                pred_term.replace_successor(block, target)
        changed = True
    return changed


def simplify_cfg(module: Module) -> bool:
    """-simplifycfg."""
    changed = False
    for function in module.defined_functions():
        local = False
        local |= _fold_constant_branches_function(function)
        local |= _skip_empty_blocks(function)
        local |= _remove_unreachable_blocks(function)
        local |= _merge_single_successor_blocks(function)
        if local:
            changed = True
    return changed


def jump_threading(module: Module) -> bool:
    """-jump-threading (simplified): fold branches whose condition is constant
    and bypass trivial forwarding blocks."""
    changed = False
    for function in module.defined_functions():
        local = False
        local |= _fold_constant_branches_function(function)
        local |= _skip_empty_blocks(function)
        local |= _remove_unreachable_blocks(function)
        if local:
            changed = True
    return changed


def correlated_value_propagation(module: Module) -> bool:
    """-correlated-propagation (simplified): in a block reached only via the
    true edge of ``br (icmp eq x, C)``, replace uses of x with C."""
    changed = False
    for function in module.defined_functions():
        preds = predecessors(function)
        for block in function.blocks:
            block_preds = preds.get(block, [])
            if len(block_preds) != 1:
                continue
            pred = block_preds[0]
            terminator = pred.terminator
            if terminator is None or terminator.opcode != "br" or len(terminator.operands) != 3:
                continue
            condition, if_true, if_false = terminator.operands
            if if_true is if_false or not isinstance(condition, Instruction):
                continue
            if condition.opcode != "icmp" or condition.attrs.get("predicate") != "eq":
                continue
            if block is not if_true:
                continue
            lhs, rhs = condition.operands
            if isinstance(rhs, Constant) and not isinstance(lhs, Constant):
                for inst in block.instructions:
                    for index, operand in enumerate(inst.operands):
                        if operand is lhs and inst.opcode != "phi":
                            inst.operands[index] = rhs
                            changed = True
    return changed


def merge_return(module: Module) -> bool:
    """-mergereturn: funnel all returns through a single exit block."""
    changed = False
    for function in module.defined_functions():
        ret_blocks = [
            block
            for block in function.blocks
            if block.terminator is not None and block.terminator.opcode == "ret"
        ]
        if len(ret_blocks) <= 1:
            continue
        exit_block = BasicBlock(function.new_block_name("unified_return"))
        returns_value = not function.return_type.is_void
        incoming = []
        for block in ret_blocks:
            ret = block.terminator
            value = ret.operands[0] if ret.operands else None
            index = block.instructions.index(ret)
            block.instructions[index] = Instruction("br", [exit_block], type=VOID)
            block.instructions[index].parent = block
            if returns_value:
                incoming.append((value, block))
        if returns_value:
            phi = Instruction("phi", type=function.return_type, name=function.new_value_name("retval"))
            phi.set_phi_incoming(incoming)
            exit_block.append(phi)
            exit_block.append(Instruction("ret", [phi], type=VOID))
        else:
            exit_block.append(Instruction("ret", [], type=VOID))
        function.add_block(exit_block)
        changed = True
    return changed
