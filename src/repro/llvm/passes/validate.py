"""Pass-validation harness: vet every registered pass against the verifier.

Two layers of defense against miscompiling passes, mirroring how CompilerGym
leans on LLVM's ``-verify`` machinery and differential testing:

1. **Verify-after-each-pass**: run a pass on a benchmark's module, then run the
   semantic verifier (SSA dominance, phi coherence, operand typing). Any error
   is a pass bug — the input modules are verified first.
2. **Differential check**: for benchmarks the reference interpreter can run,
   compare the program's output before and after the pass. A pass that keeps
   the IR well-formed but changes behavior is caught here.

The harness also carries five *seeded miscompile mutations* — hand-written IR
corruptions of the kinds optimizer bugs actually produce — and a self-test
that asserts the verifier rejects each one. The self-test runs first in
``repro-compilergym lint`` so that a regressed verifier cannot silently
green-light the pass sweep.
"""

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional

from repro.llvm.interpreter import (
    ExecutionError,
    ExecutionResult,
    OpaqueFunctionError,
    run_module,
)
from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.parser import parse_module
from repro.llvm.ir.printer import print_module
from repro.llvm.ir.types import I64
from repro.llvm.ir.values import Constant
from repro.llvm.ir.verifier import verify_module
from repro.llvm.passes.registry import (
    O3_PIPELINE,
    OZ_PIPELINE,
    PASS_REGISTRY,
    run_pass,
)

# Passes excluded from linting: gvn-sink is the registry's deliberately
# nondeterministic pass (kept out of the action space for the same reason).
LINT_EXCLUDED_PASSES = frozenset({"gvn-sink"})


# -- seeded miscompile mutations ----------------------------------------------

# A small diamond CFG with a phi — enough surface for every mutation kind.
_SELF_TEST_IR = """
define i32 @main(i32 %a, i32 %b) {
entry:
  %cmp = icmp slt i32 %a, %b
  br i1 %cmp, label %then, label %else
then:
  %x = add i32 %a, 1
  br label %join
else:
  %y = mul i32 %b, 2
  br label %join
join:
  %p = phi i32 [ %x, %then ], [ %y, %else ]
  %z = add i32 %p, %a
  ret i32 %z
}
"""


def self_test_module() -> Module:
    """A fresh, verifier-clean module that every seeded mutation applies to."""
    return parse_module(_SELF_TEST_IR)


def _main_blocks(module: Module) -> Dict[str, BasicBlock]:
    return {block.name: block for block in module.function("main").blocks}


def _named(module: Module, name: str) -> Instruction:
    for inst in module.function("main").instructions():
        if inst.name == name:
            return inst
    raise ValueError(f"self-test module has no %{name}")


def _clobber_phi_edge(module: Module) -> None:
    """Retarget a phi's incoming edge at a block that is not a predecessor."""
    phi = _named(module, "p")
    phi.operands[1] = _main_blocks(module)["entry"]


def _hoist_use_before_def(module: Module) -> None:
    """Hoist a use above its definition (an illegal LICM-style hoist)."""
    blocks = _main_blocks(module)
    use = _named(module, "z")  # Uses %p, defined in join.
    blocks["join"].remove(use)
    blocks["entry"].insert(0, use)


def _mismatch_operand_type(module: Module) -> None:
    """Swap a binary operand for one of a different type."""
    _named(module, "x").operands[1] = Constant(I64, 1)


def _dangle_block_ref(module: Module) -> None:
    """Point a branch at a block that is not part of the function."""
    limbo = BasicBlock("limbo")
    _main_blocks(module)["entry"].terminator.operands[1] = limbo


def _duplicate_name(module: Module) -> None:
    """Give two instructions the same result name."""
    _named(module, "y").name = "x"


MISCOMPILE_MUTATIONS: Dict[str, Callable[[Module], None]] = {
    "clobbered-phi-edge": _clobber_phi_edge,
    "use-before-def-hoist": _hoist_use_before_def,
    "type-mismatched-operand": _mismatch_operand_type,
    "dangling-block-ref": _dangle_block_ref,
    "duplicate-name": _duplicate_name,
}


def verifier_self_test() -> List[str]:
    """Assert the verifier accepts the clean module and rejects each mutation.

    Returns a list of failure descriptions (empty when the verifier is sound).
    """
    failures: List[str] = []
    baseline = verify_module(self_test_module(), raise_on_error=False)
    if baseline:
        failures.append(f"self-test module does not verify clean: {baseline[:2]}")
    for name, mutate in MISCOMPILE_MUTATIONS.items():
        module = self_test_module()
        mutate(module)
        if not verify_module(module, raise_on_error=False):
            failures.append(f"seeded mutation {name!r} was NOT rejected by the verifier")
    return failures


# -- per-pass validation -------------------------------------------------------


class ValidationFailure(NamedTuple):
    """One pass-validation failure on one benchmark."""

    benchmark: str
    pass_name: str
    kind: str  # "crash" | "verifier" | "differential" | "cache"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.benchmark} × {self.pass_name}: {self.detail}"


def _reference_output(module: Module) -> Optional[ExecutionResult]:
    """The program's behavior under the reference interpreter, if runnable."""
    try:
        return run_module(module.clone())
    except (ExecutionError, OpaqueFunctionError, KeyError):
        return None


def validate_pass(
    module: Module,
    pass_name: str,
    benchmark: str = "<module>",
    reference: Optional[ExecutionResult] = None,
) -> List[ValidationFailure]:
    """Run one pass over a clone of ``module`` and check it did no harm.

    ``reference`` is the interpreter's output for the unoptimized module; pass
    ``None`` to skip the differential check (e.g. for non-runnable IR).

    Beyond the verifier and differential checks, the pass's ``changed``
    return value is audited against the module: the session-level observation
    cache keys on the module version, which only bumps when a pass reports a
    change — a pass that mutates IR while reporting ``changed=False`` would
    silently serve stale cached observations.
    """
    failures: List[ValidationFailure] = []
    clone = module.clone()
    ir_before = print_module(clone)
    version_before = clone.version
    try:
        changed = run_pass(clone, pass_name)
    except Exception as error:  # noqa: BLE001 - any pass crash is a finding.
        return [
            ValidationFailure(
                benchmark, pass_name, "crash", f"{type(error).__name__}: {error}"
            )
        ]
    if changed and clone.version != version_before + 1:
        failures.append(
            ValidationFailure(
                benchmark,
                pass_name,
                "cache",
                f"changed=True but module version went {version_before} -> "
                f"{clone.version} (expected exactly one bump)",
            )
        )
    elif not changed:
        if clone.version != version_before:
            failures.append(
                ValidationFailure(
                    benchmark,
                    pass_name,
                    "cache",
                    f"changed=False but module version went {version_before} -> "
                    f"{clone.version}",
                )
            )
        if print_module(clone) != ir_before:
            failures.append(
                ValidationFailure(
                    benchmark,
                    pass_name,
                    "cache",
                    "changed=False but the printed IR differs — version-keyed "
                    "observation caches would serve stale results",
                )
            )
    errors = verify_module(clone, raise_on_error=False)
    if errors:
        failures.append(
            ValidationFailure(benchmark, pass_name, "verifier", "; ".join(errors[:3]))
        )
    elif reference is not None:
        try:
            result = run_module(clone)
        except (ExecutionError, OpaqueFunctionError) as error:
            failures.append(
                ValidationFailure(
                    benchmark,
                    pass_name,
                    "differential",
                    f"optimized module no longer runs: {error}",
                )
            )
        else:
            if result != reference:
                failures.append(
                    ValidationFailure(
                        benchmark,
                        pass_name,
                        "differential",
                        f"output changed: {reference!r} -> {result!r}",
                    )
                )
    return failures


class LintReport(NamedTuple):
    """The outcome of a lint sweep."""

    benchmarks: int
    checks: int
    failures: List[ValidationFailure]

    @property
    def ok(self) -> bool:
        return not self.failures


def lint_module(
    module: Module,
    benchmark: str = "<module>",
    passes: Optional[Iterable[str]] = None,
    differential: bool = True,
) -> List[ValidationFailure]:
    """Validate every pass (and the Oz/O3 pipelines) against one module."""
    failures: List[ValidationFailure] = []
    baseline = verify_module(module, raise_on_error=False)
    if baseline:
        # A benchmark that does not verify clean is a generator/parser bug;
        # report it once rather than blaming all the passes.
        return [
            ValidationFailure(benchmark, "<input>", "verifier", "; ".join(baseline[:3]))
        ]
    if passes is None:
        passes = sorted(set(PASS_REGISTRY) - LINT_EXCLUDED_PASSES)
    reference = _reference_output(module) if differential else None
    for pass_name in passes:
        failures.extend(validate_pass(module, pass_name, benchmark, reference))
    # The pipelines exercise pass *interactions* the per-pass sweep cannot.
    for label, pipeline in (("pipeline:Oz", OZ_PIPELINE), ("pipeline:O3", O3_PIPELINE)):
        clone = module.clone()
        try:
            for pass_name in pipeline:
                run_pass(clone, pass_name)
        except Exception as error:  # noqa: BLE001
            failures.append(
                ValidationFailure(
                    benchmark, label, "crash", f"{type(error).__name__}: {error}"
                )
            )
            continue
        errors = verify_module(clone, raise_on_error=False)
        if errors:
            failures.append(
                ValidationFailure(benchmark, label, "verifier", "; ".join(errors[:3]))
            )
        elif reference is not None:
            try:
                result = run_module(clone)
            except (ExecutionError, OpaqueFunctionError) as error:
                failures.append(
                    ValidationFailure(
                        benchmark, label, "differential", f"no longer runs: {error}"
                    )
                )
            else:
                if result != reference:
                    failures.append(
                        ValidationFailure(
                            benchmark,
                            label,
                            "differential",
                            f"output changed: {reference!r} -> {result!r}",
                        )
                    )
    return failures


def lint_datasets(
    dataset_names: Optional[Iterable[str]] = None,
    benchmarks_per_dataset: int = 2,
    passes: Optional[Iterable[str]] = None,
    differential: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> LintReport:
    """Lint every registered pass over samples of the builtin datasets.

    Datasets are effectively unbounded (several are generated), so the sweep
    takes the first ``benchmarks_per_dataset`` benchmarks of each dataset —
    deterministic, so CI failures reproduce locally.
    """
    from repro.llvm.datasets.suites import make_llvm_datasets

    datasets = make_llvm_datasets()
    if dataset_names is not None:
        wanted = set(dataset_names)
        datasets = [d for d in datasets if d.name in wanted]
        missing = wanted - {d.name for d in datasets}
        if missing:
            raise ValueError(f"unknown dataset(s): {sorted(missing)}")

    pass_list = (
        sorted(set(PASS_REGISTRY) - LINT_EXCLUDED_PASSES)
        if passes is None
        else list(passes)
    )
    benchmarks = 0
    checks = 0
    failures: List[ValidationFailure] = []
    for dataset in datasets:
        taken = 0
        for bench in dataset.benchmarks():
            if taken >= benchmarks_per_dataset:
                break
            taken += 1
            benchmarks += 1
            uri = str(bench.uri)
            if progress:
                progress(f"lint {uri} ({len(pass_list)} passes)")
            bench_failures = lint_module(
                bench.program, uri, passes=pass_list, differential=differential
            )
            checks += len(pass_list) + 2  # +2 for the Oz/O3 pipelines.
            failures.extend(bench_failures)
            if progress:
                for failure in bench_failures:
                    progress(f"  FAIL {failure}")
    return LintReport(benchmarks=benchmarks, checks=checks, failures=failures)
