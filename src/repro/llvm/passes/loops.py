"""Loop passes: -loop-simplify, -licm, -loop-unroll, -loop-deletion,
-loop-rotate, -indvars, -loop-idiom."""

from typing import Dict, List, Optional, Tuple

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.cfg import Loop, natural_loops, predecessors
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import VOID
from repro.llvm.ir.values import Constant, Value
from repro.llvm.passes.utils import collect_uses, is_pure, replace_all_uses

# Full unrolling is only applied to loops at most this many iterations long,
# mirroring LLVM's -unroll-threshold behaviour of bounding code growth.
FULL_UNROLL_MAX_TRIP_COUNT = 16


def _loop_preheader(function: Function, loop: Loop) -> Optional[BasicBlock]:
    """The unique predecessor of the loop header from outside the loop."""
    preds = predecessors(function)
    outside = [p for p in preds.get(loop.header, []) if p not in loop.blocks]
    if len(outside) == 1:
        return outside[0]
    return None


def loop_simplify(module: Module) -> bool:
    """-loop-simplify: give every loop a dedicated preheader block.

    When the header has multiple predecessors from outside the loop, a new
    preheader is created that they branch to instead. Loops emitted by the
    benchmark generators already have preheaders, so this usually reports no
    change — but LICM depends on the canonical form it guarantees.
    """
    changed = False
    for function in module.defined_functions():
        for loop in natural_loops(function):
            preds = predecessors(function)
            outside = [p for p in preds.get(loop.header, []) if p not in loop.blocks]
            if len(outside) <= 1:
                continue
            preheader = BasicBlock(function.new_block_name("preheader"))
            preheader.append(Instruction("br", [loop.header], type=VOID))
            function.add_block(preheader)
            for pred in outside:
                terminator = pred.terminator
                if terminator is not None:
                    terminator.replace_successor(loop.header, preheader)
            # Phi nodes in the header must now route their outside-incoming
            # values through the preheader. With multiple outside values a new
            # phi is needed in the preheader.
            for phi in loop.header.phis():
                outside_pairs = [
                    (value, block) for value, block in phi.phi_incoming() if block in outside
                ]
                inside_pairs = [
                    (value, block) for value, block in phi.phi_incoming() if block not in outside
                ]
                if not outside_pairs:
                    continue
                if len(outside_pairs) == 1:
                    merged: Value = outside_pairs[0][0]
                else:
                    merged_phi = Instruction(
                        "phi", type=phi.type, name=function.new_value_name("ph")
                    )
                    merged_phi.set_phi_incoming(outside_pairs)
                    preheader.insert(0, merged_phi)
                    merged = merged_phi
                phi.set_phi_incoming(inside_pairs + [(merged, preheader)])
            changed = True
    return changed


def loop_invariant_code_motion(module: Module) -> bool:
    """-licm: hoist loop-invariant pure computations into the preheader."""
    changed = False
    for function in module.defined_functions():
        for loop in natural_loops(function):
            preheader = _loop_preheader(function, loop)
            if preheader is None or preheader.terminator is None:
                continue
            loop_values = {
                inst for block in loop.blocks for inst in block.instructions
            }
            hoisted = True
            while hoisted:
                hoisted = False
                for block in loop.blocks:
                    for inst in list(block.instructions):
                        if not is_pure(inst) or not inst.has_result:
                            continue
                        if any(op in loop_values for op in inst.value_operands()):
                            continue
                        # Hoist: insert before the preheader terminator.
                        block.remove(inst)
                        preheader.insert(len(preheader.instructions) - 1, inst)
                        loop_values.discard(inst)
                        changed = True
                        hoisted = True
    return changed


def _single_block_loop_trip_count(
    loop: Loop, max_iterations: int = FULL_UNROLL_MAX_TRIP_COUNT
) -> Optional[Tuple[Instruction, int, int, int]]:
    """Recognize a single-block counted loop and return its induction pattern.

    Returns ``(induction_phi, start, step, trip_count)`` for loops of the
    canonical form produced by the generators::

        loop:
          %i = phi [ start, %preheader ], [ %i.next, %loop ]
          ...body (may contain further loop-carried phis)...
          %i.next = add %i, step
          %cond = icmp slt %i.next, N
          br %cond, label %loop, label %exit
    """
    if len(loop.blocks) != 1:
        return None
    block = loop.header
    terminator = block.terminator
    if terminator is None or terminator.opcode != "br" or len(terminator.operands) != 3:
        return None
    condition = terminator.operands[0]
    if not isinstance(condition, Instruction) or condition.opcode != "icmp":
        return None
    predicate = condition.attrs.get("predicate")
    if predicate not in ("slt", "sle", "ne", "ult"):
        return None
    lhs, rhs = condition.operands
    if not isinstance(rhs, Constant):
        return None
    limit = int(rhs.value)
    # Find the induction phi: the one incremented by a constant and tested by
    # the exit condition. Every phi must have exactly the two expected edges.
    induction_phi = None
    start = step = None
    next_value = None
    for phi in block.phis():
        incoming = list(phi.phi_incoming())
        if len(incoming) != 2:
            return None
        start_value = next((v for v, b in incoming if b is not block), None)
        carried = next((v for v, b in incoming if b is block), None)
        if (
            isinstance(start_value, Constant)
            and isinstance(carried, Instruction)
            and carried.opcode == "add"
            and carried.operands[0] is phi
            and isinstance(carried.operands[1], Constant)
            and int(carried.operands[1].value) != 0
            and (lhs is carried or lhs is phi)
        ):
            induction_phi = phi
            start = int(start_value.value)
            step = int(carried.operands[1].value)
            next_value = carried
            break
    if induction_phi is None:
        return None
    # Compute the trip count by symbolic iteration (bounded).
    count, i = 0, start
    for _ in range(max_iterations + 2):
        i_next = i + step
        compare_value = i_next if lhs is next_value else i
        if predicate in ("slt", "ult"):
            continue_loop = compare_value < limit
        elif predicate == "sle":
            continue_loop = compare_value <= limit
        else:  # ne
            continue_loop = compare_value != limit
        count += 1
        if not continue_loop:
            break
        i = i_next
    else:
        return None
    return induction_phi, start, step, count


def loop_unroll(module: Module) -> bool:
    """-loop-unroll: fully unroll small constant-trip-count single-block loops.

    The loop body is replicated trip-count times in the preheader's successor
    chain, the induction phi is replaced by the concrete induction values, and
    the loop back edge is removed. Loops that do not match the canonical
    pattern (multi-block bodies, unknown trip counts, too many iterations) are
    left unchanged, as in LLVM.
    """
    changed = False
    for function in module.defined_functions():
        for loop in natural_loops(function):
            pattern = _single_block_loop_trip_count(loop)
            if pattern is None:
                continue
            induction_phi, start, step, trip_count = pattern
            if trip_count > FULL_UNROLL_MAX_TRIP_COUNT:
                continue
            preheader = _loop_preheader(function, loop)
            if preheader is None:
                continue
            block = loop.header
            terminator = block.terminator
            exit_block = next(
                (successor for successor in terminator.successors() if successor is not block), None
            )
            if exit_block is None:
                continue
            phis = block.phis()
            # For every loop-carried phi, its initial value and the value it
            # carries around the back edge.
            carried: Dict[Instruction, Value] = {}
            current: Dict[Instruction, Value] = {}
            for phi in phis:
                incoming = dict((b, v) for v, b in phi.phi_incoming())
                current[phi] = incoming[preheader] if preheader in incoming else next(
                    v for v, b in phi.phi_incoming() if b is not block
                )
                carried[phi] = next(v for v, b in phi.phi_incoming() if b is block)
            current[induction_phi] = Constant(induction_phi.type, start)

            body = [
                inst for inst in block.instructions if inst not in phis and inst is not terminator
            ]
            unrolled: List[Instruction] = []
            final_map: Dict[Value, Value] = {}
            induction = start
            for _ in range(trip_count):
                iteration_map: Dict[Value, Value] = dict(current)
                for inst in body:
                    clone = inst.clone()
                    clone.name = function.new_value_name(inst.name or "u")
                    clone.operands = [iteration_map.get(op, op) for op in clone.operands]
                    unrolled.append(clone)
                    iteration_map[inst] = clone
                # Advance the loop-carried values for the next iteration.
                induction += step
                next_current: Dict[Instruction, Value] = {}
                for phi in phis:
                    value = carried[phi]
                    next_current[phi] = iteration_map.get(value, value)
                next_current[induction_phi] = Constant(induction_phi.type, induction)
                final_map = iteration_map
                current = next_current
            # Rewrite the loop block: unrolled body followed by a branch to
            # the exit block.
            new_instructions = unrolled + [Instruction("br", [exit_block], type=VOID)]
            block.instructions = []
            for inst in new_instructions:
                block.append(inst)
            # Outside uses of loop-defined values refer to their final copies.
            for original, final in final_map.items():
                if original not in phis:
                    replace_all_uses(function, original, final)
            for phi in phis:
                replace_all_uses(function, phi, current[phi])
            changed = True
    return changed


def loop_deletion(module: Module) -> bool:
    """-loop-deletion: delete side-effect-free loops whose values are unused
    outside the loop."""
    changed = False
    for function in module.defined_functions():
        uses = collect_uses(function)
        for loop in natural_loops(function):
            if len(loop.blocks) != 1:
                continue
            block = loop.header
            # Deletion needs only a termination proof, not a small trip count,
            # so the counted-loop check runs with a much larger bound.
            pattern = _single_block_loop_trip_count(loop, max_iterations=1_000_000)
            has_side_effects = any(
                inst.has_side_effects() and not inst.is_terminator for inst in block.instructions
            )
            if has_side_effects or pattern is None:
                continue
            loop_insts = set(block.instructions)
            used_outside = any(
                user.parent is not block
                for inst in loop_insts
                for user, _ in uses.get(inst, [])
            )
            if used_outside:
                continue
            terminator = block.terminator
            exit_block = next(
                (successor for successor in terminator.successors() if successor is not block), None
            )
            preheader = _loop_preheader(function, loop)
            if exit_block is None or preheader is None:
                continue
            preheader_terminator = preheader.terminator
            preheader_terminator.replace_successor(block, exit_block)
            function.remove_block(block)
            changed = True
    return changed


def loop_rotate(module: Module) -> bool:
    """-loop-rotate: rotate while-loops into do-while form.

    The generators emit loops already in rotated (bottom-tested) form, so this
    pass typically reports no change; it is retained for action-space parity.
    """
    del module
    return False


def induction_variable_simplify(module: Module) -> bool:
    """-indvars: canonicalize induction variables.

    Simplified: rewrites comparisons against the *next* induction value into
    comparisons against the phi where the step is known, enabling unrolling.
    On already-canonical loops this is a no-op.
    """
    del module
    return False


def loop_idiom(module: Module) -> bool:
    """-loop-idiom: recognize memset/memcpy idioms. The IR has no such
    intrinsics, so this action never fires."""
    del module
    return False
