"""Memory-to-register promotion: -mem2reg, -sroa, -reg2mem, -dse, -memcpyopt."""

from typing import Dict, List, Optional

from repro.llvm.ir.cfg import dominates, dominators
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import VOID
from repro.llvm.ir.values import UndefValue, Value
from repro.llvm.passes.utils import collect_uses, replace_all_uses


def _promotable_allocas(function: Function) -> List[Instruction]:
    """Allocas used only by direct loads and stores (no GEPs, no escaping)."""
    uses = collect_uses(function)
    promotable = []
    for block in function.blocks:
        for inst in block.instructions:
            if inst.opcode != "alloca":
                continue
            ok = True
            for user, index in uses.get(inst, []):
                if user.opcode == "load":
                    continue
                if user.opcode == "store" and index == 1:
                    continue  # The alloca is the store destination, not the value.
                ok = False
                break
            if ok:
                promotable.append(inst)
    return promotable


def _promote_single_block(function: Function, alloca: Instruction) -> bool:
    """Promote an alloca whose loads and stores all live in one basic block."""
    uses = collect_uses(function)
    users = [user for user, _ in uses.get(alloca, [])]
    blocks = {user.parent for user in users}
    if len(blocks) > 1:
        return False
    block = blocks.pop() if blocks else alloca.parent
    current: Optional[Value] = None
    for inst in list(block.instructions):
        if inst.opcode == "store" and inst.operands[1] is alloca:
            current = inst.operands[0]
            block.remove(inst)
        elif inst.opcode == "load" and inst.operands[0] is alloca:
            value = current if current is not None else UndefValue(inst.type)
            replace_all_uses(function, inst, value)
            block.remove(inst)
    alloca.parent.remove(alloca)
    return True


def _promote_single_store(function: Function, alloca: Instruction) -> bool:
    """Promote an alloca with exactly one store that dominates every load."""
    uses = collect_uses(function)
    users = [(user, index) for user, index in uses.get(alloca, [])]
    stores = [user for user, index in users if user.opcode == "store" and index == 1]
    loads = [user for user, _ in users if user.opcode == "load"]
    if len(stores) != 1:
        return False
    store = stores[0]
    dom = dominators(function)
    stored_value = store.operands[0]
    for load in loads:
        if load.parent is store.parent:
            if store.parent.instructions.index(store) > load.parent.instructions.index(load):
                return False
        elif not dominates(dom, store.parent, load.parent):
            return False
    for load in loads:
        replace_all_uses(function, load, stored_value)
        load.parent.remove(load)
    store.parent.remove(store)
    alloca.parent.remove(alloca)
    return True


def promote_memory_to_registers(module: Module) -> bool:
    """-mem2reg: promote stack slots to SSA values.

    Two promotion strategies are implemented: block-local promotion (loads
    forward to the most recent store in the same block) and single-store
    promotion (the stored value dominates every load). These cover the stack
    slots emitted by the benchmark generators; allocas with more complex
    def-use webs are left in memory form, exactly as the real pass leaves
    address-taken allocas.
    """
    changed = False
    for function in module.defined_functions():
        for alloca in _promotable_allocas(function):
            if _promote_single_store(function, alloca):
                changed = True
            elif _promote_single_block(function, alloca):
                changed = True
    return changed


def scalar_replacement_of_aggregates(module: Module) -> bool:
    """-sroa: on this IR aggregates are modelled as scalar allocas, so SROA
    reduces to mem2reg promotion."""
    return promote_memory_to_registers(module)


def demote_registers_to_memory(module: Module) -> bool:
    """-reg2mem: demote SSA values that cross block boundaries into stack slots.

    This is the inverse of mem2reg and exists (as in LLVM) mainly to make
    other transformations simpler; it increases instruction count.
    """
    changed = False
    for function in module.defined_functions():
        entry = function.entry
        if entry is None:
            continue
        uses = collect_uses(function)
        for block in function.blocks:
            for inst in list(block.instructions):
                if not inst.has_result or inst.opcode in ("alloca", "phi"):
                    continue
                users = uses.get(inst, [])
                cross_block = [user for user, _ in users if user.parent is not block]
                if not cross_block or any(user.opcode == "phi" for user, _ in users):
                    continue
                from repro.llvm.ir.types import PTR

                alloca = Instruction(
                    "alloca",
                    [],
                    type=PTR,
                    name=function.new_value_name("slot"),
                    attrs={"element_type": inst.type},
                )
                entry.insert(0, alloca)
                store = Instruction("store", [inst, alloca], type=VOID)
                block.insert(block.instructions.index(inst) + 1, store)
                for user, index in users:
                    if user.parent is not block and user.opcode != "phi":
                        load = Instruction(
                            "load", [alloca], type=inst.type, name=function.new_value_name("reload")
                        )
                        user.parent.insert(user.parent.instructions.index(user), load)
                        user.operands[index] = load
                changed = True
        if changed:
            uses = collect_uses(function)
    return changed


def dead_store_elimination(module: Module) -> bool:
    """-dse: remove stores that are overwritten before any intervening load."""
    changed = False
    for function in module.defined_functions():
        for block in function.blocks:
            last_store: Dict[int, Instruction] = {}
            for inst in list(block.instructions):
                if inst.opcode == "store":
                    pointer = inst.operands[1]
                    previous = last_store.get(id(pointer))
                    if previous is not None and previous.parent is block:
                        block.remove(previous)
                        changed = True
                    last_store[id(pointer)] = inst
                elif inst.opcode == "load":
                    last_store.pop(id(inst.operands[0]), None)
                elif inst.opcode == "call":
                    # Calls may read any memory: invalidate everything.
                    last_store.clear()
    return changed


def memcpy_optimization(module: Module) -> bool:
    """-memcpyopt: this IR has no memcpy intrinsic, so the pass never fires.

    Kept as a registered action for action-space parity with the paper; like
    many real passes it is frequently a no-op for a given module.
    """
    del module
    return False
