"""Shared helpers for optimization passes: use lists, RAUW, constant folding."""

from typing import Dict, List, Optional, Tuple

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.types import I1, Type
from repro.llvm.ir.values import Constant, Value


def collect_uses(function: Function) -> Dict[Value, List[Tuple[Instruction, int]]]:
    """Map each value to the ``(instruction, operand index)`` pairs that use it."""
    uses: Dict[Value, List[Tuple[Instruction, int]]] = {}
    for block in function.blocks:
        for inst in block.instructions:
            for index, operand in enumerate(inst.operands):
                uses.setdefault(operand, []).append((inst, index))
    return uses


def replace_all_uses(function: Function, old: Value, new: Value) -> int:
    """Replace every use of ``old`` with ``new`` in the function. Returns the count."""
    count = 0
    for block in function.blocks:
        for inst in block.instructions:
            for index, operand in enumerate(inst.operands):
                if operand is old:
                    inst.operands[index] = new
                    count += 1
    return count


def is_pure(inst: Instruction) -> bool:
    """Whether the instruction can be removed or moved freely (no side effects,
    no dependence on memory state)."""
    if inst.has_side_effects():
        return False
    # Loads depend on memory state: they are removable when unused but not
    # freely reorderable past stores, so they are excluded from CSE/LICM by
    # default.
    if inst.opcode in ("load", "phi", "alloca"):
        return False
    return True


def is_trivially_dead(inst: Instruction, uses: Dict[Value, List[Tuple[Instruction, int]]]) -> bool:
    """Whether the instruction has no side effects and its result is unused."""
    if inst.is_terminator or inst.has_side_effects():
        return False
    return not uses.get(inst)


_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "lshr": lambda a, b: (a & 0xFFFFFFFFFFFFFFFF) >> (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
}

_FLOAT_BINOPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
}

_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: abs(a) < abs(b),
    "ule": lambda a, b: abs(a) <= abs(b),
    "ugt": lambda a, b: abs(a) > abs(b),
    "uge": lambda a, b: abs(a) >= abs(b),
}

_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


def _wrap_int(value: int, type: Type) -> int:  # noqa: A002
    """Wrap an integer to the bit width of its type (two's complement)."""
    bits = type.bits or 64
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def fold_binary(inst: Instruction) -> Optional[Constant]:
    """Constant-fold a binary instruction whose operands are both constants."""
    if not inst.is_binary or len(inst.operands) != 2:
        return None
    lhs, rhs = inst.operands
    if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
        return None
    op = inst.opcode
    try:
        if op in _INT_BINOPS:
            return Constant(inst.type, _wrap_int(_INT_BINOPS[op](int(lhs.value), int(rhs.value)), inst.type))
        if op in _FLOAT_BINOPS:
            return Constant(inst.type, _FLOAT_BINOPS[op](float(lhs.value), float(rhs.value)))
        if op in ("sdiv", "udiv"):
            if int(rhs.value) == 0:
                return None
            return Constant(inst.type, _wrap_int(int(int(lhs.value) / int(rhs.value)), inst.type))
        if op in ("srem", "urem"):
            if int(rhs.value) == 0:
                return None
            return Constant(inst.type, _wrap_int(int(lhs.value) - int(int(lhs.value) / int(rhs.value)) * int(rhs.value), inst.type))
        if op in ("fdiv", "frem"):
            if float(rhs.value) == 0.0:
                return None
            if op == "fdiv":
                return Constant(inst.type, float(lhs.value) / float(rhs.value))
            return Constant(inst.type, float(lhs.value) % float(rhs.value))
    except (OverflowError, ValueError, ZeroDivisionError):
        return None
    return None


def fold_compare(inst: Instruction) -> Optional[Constant]:
    """Constant-fold a comparison whose operands are both constants."""
    if not inst.is_compare or len(inst.operands) != 2:
        return None
    lhs, rhs = inst.operands
    if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
        return None
    predicate = inst.attrs.get("predicate", "eq")
    table = _ICMP if inst.opcode == "icmp" else _FCMP
    if predicate not in table:
        return None
    return Constant(I1, int(bool(table[predicate](lhs.value, rhs.value))))


def fold_cast(inst: Instruction) -> Optional[Constant]:
    """Constant-fold a cast of a constant."""
    if not inst.is_cast or len(inst.operands) != 1:
        return None
    (operand,) = inst.operands
    if not isinstance(operand, Constant):
        return None
    op = inst.opcode
    value = operand.value
    try:
        if op in ("zext", "sext", "trunc", "ptrtoint", "inttoptr", "bitcast", "fptosi"):
            return Constant(inst.type, _wrap_int(int(value), inst.type))
        if op in ("sitofp", "fpext", "fptrunc"):
            return Constant(inst.type, float(value))
    except (OverflowError, ValueError):
        return None
    return None


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Constant-fold any foldable instruction."""
    folded = fold_binary(inst)
    if folded is None:
        folded = fold_compare(inst)
    if folded is None:
        folded = fold_cast(inst)
    if folded is None and inst.opcode == "select":
        cond = inst.operands[0]
        if isinstance(cond, Constant):
            return inst.operands[1] if cond.value else inst.operands[2]
    return folded


def remove_phi_incoming(block: BasicBlock, pred: BasicBlock) -> None:
    """Remove ``pred`` from the incoming lists of every phi in ``block``.

    Phis left with a single incoming value are replaced by that value.
    """
    function = block.parent
    for phi in list(block.phis()):
        pairs = [(value, incoming) for value, incoming in phi.phi_incoming() if incoming is not pred]
        if len(pairs) == len(list(phi.phi_incoming())):
            continue
        if len(pairs) == 1:
            replace_all_uses(function, phi, pairs[0][0])
            block.remove(phi)
        elif not pairs:
            block.remove(phi)
        else:
            phi.set_phi_incoming(pairs)


def replace_phi_incoming_block(block: BasicBlock, old_pred: BasicBlock, new_pred: BasicBlock) -> None:
    """Rewrite phi incoming-block references from ``old_pred`` to ``new_pred``."""
    for phi in block.phis():
        pairs = [
            (value, new_pred if incoming is old_pred else incoming)
            for value, incoming in phi.phi_incoming()
        ]
        phi.set_phi_incoming(pairs)


def make_unconditional(block: BasicBlock, target: BasicBlock) -> None:
    """Replace the block's terminator with an unconditional branch to ``target``.

    Phi nodes in abandoned successors are updated.
    """
    terminator = block.terminator
    if terminator is None:
        block.append(Instruction("br", [target]))
        return
    for successor in terminator.successors():
        if successor is not target:
            remove_phi_incoming(successor, block)
    index = block.instructions.index(terminator)
    block.instructions[index] = Instruction("br", [target])
    block.instructions[index].parent = block


def erase_dead_instructions(function: Function) -> int:
    """Iteratively remove trivially dead instructions. Returns the count removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        uses = collect_uses(function)
        for block in function.blocks:
            for inst in list(block.instructions):
                if is_trivially_dead(inst, uses):
                    block.remove(inst)
                    removed += 1
                    changed = True
        if changed:
            continue
    return removed
