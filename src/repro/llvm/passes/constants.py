"""Constant propagation passes: -constprop, -sccp, -ipsccp, -constmerge."""

from typing import Dict

from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Constant
from repro.llvm.passes.utils import (
    collect_uses,
    fold_instruction,
    make_unconditional,
    replace_all_uses,
)


def _propagate_constants_function(function: Function) -> bool:
    """Fold instructions with constant operands and propagate the results."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for inst in list(block.instructions):
                folded = fold_instruction(inst)
                if folded is None:
                    continue
                replace_all_uses(function, inst, folded)
                block.remove(inst)
                changed = True
                progress = True
    return changed


def constant_propagation(module: Module) -> bool:
    """-constprop: fold and propagate constant expressions."""
    changed = False
    for function in module.defined_functions():
        if _propagate_constants_function(function):
            changed = True
    return changed


def _fold_constant_branches_function(function: Function) -> bool:
    """Rewrite conditional branches and switches on constants."""
    changed = False
    for block in function.blocks:
        terminator = block.terminator
        if terminator is None:
            continue
        if terminator.opcode == "br" and len(terminator.operands) == 3:
            condition = terminator.operands[0]
            if isinstance(condition, Constant):
                target = terminator.operands[1] if condition.value else terminator.operands[2]
                make_unconditional(block, target)
                changed = True
        elif terminator.opcode == "switch":
            value = terminator.operands[0]
            if isinstance(value, Constant):
                target = terminator.operands[1]  # Default.
                for i in range(2, len(terminator.operands), 2):
                    case_const, case_block = terminator.operands[i], terminator.operands[i + 1]
                    if isinstance(case_const, Constant) and case_const.value == value.value:
                        target = case_block
                        break
                make_unconditional(block, target)
                changed = True
    return changed


def sparse_conditional_constant_propagation(module: Module) -> bool:
    """-sccp: constant propagation plus folding of branches on constants."""
    changed = constant_propagation(module)
    for function in module.defined_functions():
        if _fold_constant_branches_function(function):
            changed = True
    return changed


def interprocedural_sccp(module: Module) -> bool:
    """-ipsccp: SCCP plus propagation of constant arguments into callees.

    If every call site of an internal function passes the same constant for an
    argument, the argument is replaced by that constant inside the callee.
    """
    changed = sparse_conditional_constant_propagation(module)
    # Gather call sites per callee.
    call_args: Dict[str, list] = {}
    for function in module.defined_functions():
        for inst in function.instructions():
            if inst.opcode == "call":
                call_args.setdefault(inst.attrs.get("callee", ""), []).append(inst.operands)
    for callee_name, sites in call_args.items():
        callee = module.function(callee_name)
        if callee is None or callee.is_declaration or callee.name == "main":
            continue
        for index, arg in enumerate(callee.args):
            values = {  # The distinct constants passed for this argument.
                (operands[index].type.name, operands[index].value)
                for operands in sites
                if index < len(operands) and isinstance(operands[index], Constant)
            }
            all_constant = all(
                index < len(operands) and isinstance(operands[index], Constant)
                for operands in sites
            )
            if all_constant and len(values) == 1 and sites:
                type_name, value = next(iter(values))
                constant = Constant(arg.type, value)
                if replace_all_uses(callee, arg, constant):
                    changed = True
    if changed:
        constant_propagation(module)
    return changed


def constant_merge(module: Module) -> bool:
    """-constmerge: merge duplicate constant globals."""
    changed = False
    seen: Dict[tuple, str] = {}
    replacements: Dict[str, str] = {}
    for name, global_var in list(module.globals.items()):
        if not global_var.is_constant_global:
            continue
        key = (global_var.element_type.name, global_var.initializer, global_var.array_size)
        if key in seen:
            replacements[name] = seen[key]
        else:
            seen[key] = name
    for old_name, new_name in replacements.items():
        old = module.globals[old_name]
        new = module.globals[new_name]
        for function in module.defined_functions():
            replace_all_uses(function, old, new)
        del module.globals[old_name]
        changed = True
    return changed
