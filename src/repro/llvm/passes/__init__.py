"""Optimization passes for the simulated LLVM IR.

The pass registry exposes the 124-action pass list used by the LLVM
phase-ordering environment, plus the reference ``-Oz`` and ``-O3`` pipelines
that reward signals are scaled against.
"""

from repro.llvm.passes.registry import (
    ACTION_SPACE_PASSES,
    O3_PIPELINE,
    OZ_PIPELINE,
    PASS_REGISTRY,
    get_pass,
    run_pass,
    run_pipeline,
)

__all__ = [
    "ACTION_SPACE_PASSES",
    "O3_PIPELINE",
    "OZ_PIPELINE",
    "PASS_REGISTRY",
    "get_pass",
    "run_pass",
    "run_pipeline",
]
