"""The pass registry and the phase-ordering action space.

``ACTION_SPACE_PASSES`` lists the 124 pass actions exposed by the LLVM
phase-ordering environment, matching the count extracted automatically from
LLVM in the paper. A substantial subset are fully implemented transformations
on the simulated IR; the remainder are registered as no-op actions (exactly as
many real LLVM passes are no-ops for any particular module — e.g. coroutine or
GC passes on code containing neither). ``-gvn-sink`` is implemented but
deliberately *excluded* from the action space: the paper reports removing it
from CompilerGym after the state-validation machinery caught its
nondeterministic output, and this reproduction keeps it around (outside the
action space) so the validation tests can demonstrate the same detection.
"""

from typing import Callable, Dict, List

from repro.llvm.ir.module import Module
from repro.llvm.passes import constants, cse, dce, instcombine, ipo, loops, lowering, mem2reg, simplifycfg
from repro.llvm.passes.utils import collect_uses, is_pure, replace_all_uses

PassFn = Callable[[Module], bool]


def _noop_pass(name: str) -> PassFn:
    """A registered action that never modifies the module.

    These correspond to LLVM passes whose subject matter (coroutines,
    vectorization, profiling instrumentation, GC statepoints, ...) does not
    exist in the simulated IR.
    """

    def run(module: Module) -> bool:  # noqa: ARG001 - signature fixed by registry
        return False

    run.__name__ = f"noop_{name.replace('-', '_')}"
    run.__doc__ = f"-{name}: no-op on the simulated IR (subject matter not modelled)."
    return run


def gvn_sink(module: Module) -> bool:
    """-gvn-sink: a deliberately nondeterministic sinking pass.

    Reproduces the reproducibility bug the paper describes: the real pass
    sorted basic-block pointers by address, so its output depended on memory
    layout. Here the instruction visit order depends on ``id()`` values, which
    vary between processes, producing occasionally different (but still
    semantically correct) sink decisions. It is excluded from the action space
    and exists to exercise the validation machinery.
    """
    changed = False
    for function in module.defined_functions():
        uses = collect_uses(function)
        candidates = []
        for block in function.blocks:
            successors = block.successors()
            if len(successors) != 2:
                continue
            for inst in block.instructions:
                if not is_pure(inst) or not inst.has_result:
                    continue
                users = uses.get(inst, [])
                user_blocks = {user.parent for user, _ in users}
                if len(user_blocks) == 1 and next(iter(user_blocks)) in successors:
                    candidates.append(inst)
        # The nondeterminism: candidates are processed in id() order, and only
        # the first half are sunk.
        candidates.sort(key=id)
        for inst in candidates[: max(1, len(candidates) // 2)] if candidates else []:
            target = next(iter({user.parent for user, _ in uses.get(inst, [])}))
            from repro.llvm.ir.cfg import predecessors

            if len(predecessors(function).get(target, [])) != 1:
                continue
            if inst.parent is None or any(user.opcode == "phi" for user, _ in uses.get(inst, [])):
                continue
            inst.parent.remove(inst)
            target.insert(len(target.phis()), inst)
            changed = True
    return changed


# Passes with real implementations on the simulated IR.
_IMPLEMENTED: Dict[str, PassFn] = {
    "adce": dce.aggressive_dce,
    "aggressive-instcombine": instcombine.aggressive_instcombine,
    "always-inline": ipo.always_inline,
    "argpromotion": ipo.argument_promotion,
    "barrier": lowering.barrier,
    "break-crit-edges": lowering.break_critical_edges,
    "canonicalize-aliases": lowering.canonicalize_aliases,
    "constmerge": constants.constant_merge,
    "constprop": constants.constant_propagation,
    "correlated-propagation": simplifycfg.correlated_value_propagation,
    "dce": dce.dead_code_elimination,
    "deadargelim": ipo.dead_argument_elimination,
    "die": dce.dead_instruction_elimination,
    "div-rem-pairs": instcombine.div_rem_pairs,
    "dse": mem2reg.dead_store_elimination,
    "early-cse": cse.early_cse,
    "early-cse-memssa": cse.early_cse,
    "globaldce": ipo.global_dce,
    "globalopt": ipo.global_opt,
    "gvn": cse.global_value_numbering,
    "gvn-hoist": cse.global_value_numbering,
    "indvars": loops.induction_variable_simplify,
    "inline": ipo.inline_functions,
    "instcombine": instcombine.instruction_combining,
    "instsimplify": instcombine.instruction_simplify,
    "ipconstprop": constants.interprocedural_sccp,
    "ipsccp": constants.interprocedural_sccp,
    "jump-threading": simplifycfg.jump_threading,
    "lcssa": lowering.barrier,
    "licm": loops.loop_invariant_code_motion,
    "loop-deletion": loops.loop_deletion,
    "loop-idiom": loops.loop_idiom,
    "loop-instsimplify": instcombine.instruction_simplify,
    "loop-rotate": loops.loop_rotate,
    "loop-simplify": loops.loop_simplify,
    "loop-simplifycfg": simplifycfg.simplify_cfg,
    "loop-sink": cse.sink,
    "loop-unroll": loops.loop_unroll,
    "loweratomic": lowering.lower_atomic,
    "lower-expect": lowering.lower_expect,
    "lowerinvoke": lowering.lower_invoke,
    "lowerswitch": lowering.lower_switch,
    "mem2reg": mem2reg.promote_memory_to_registers,
    "memcpyopt": mem2reg.memcpy_optimization,
    "mergefunc": ipo.merge_functions,
    "mergereturn": simplifycfg.merge_return,
    "name-anon-globals": lowering.name_anon_globals,
    "newgvn": cse.new_gvn,
    "partial-inliner": ipo.partial_inliner,
    "reassociate": instcombine.reassociate,
    "reg2mem": mem2reg.demote_registers_to_memory,
    "sccp": constants.sparse_conditional_constant_propagation,
    "simplifycfg": simplifycfg.simplify_cfg,
    "sink": cse.sink,
    "sroa": mem2reg.scalar_replacement_of_aggregates,
    "strip": lowering.strip_metadata,
    "strip-dead-prototypes": ipo.strip_dead_prototypes,
    "strip-debug-declare": lowering.strip_debug_declare,
    "strip-nondebug": lowering.strip_metadata,
    "tailcallelim": ipo.tail_call_elimination,
    "verify": lowering.verify_pass,
}

# Actions registered for action-space parity with the paper's 124-pass space
# whose subject matter the simulated IR does not model.
_NOOP_ACTION_NAMES: List[str] = [
    "add-discriminators",
    "alignment-from-assumptions",
    "attributor",
    "bdce",
    "callsite-splitting",
    "called-value-propagation",
    "consthoist",
    "coro-cleanup",
    "coro-early",
    "coro-elide",
    "coro-split",
    "cross-dso-cfi",
    "ee-instrument",
    "elim-avail-extern",
    "flattencfg",
    "float2int",
    "forceattrs",
    "functionattrs",
    "globalsplit",
    "guard-widening",
    "hotcoldsplit",
    "infer-address-spaces",
    "inferattrs",
    "inject-tli-mappings",
    "insert-gcov-profiling",
    "instnamer",
    "irce",
    "libcalls-shrinkwrap",
    "load-store-vectorizer",
    "loop-data-prefetch",
    "loop-distribute",
    "loop-fusion",
    "loop-guard-widening",
    "loop-interchange",
    "loop-load-elim",
    "loop-predication",
    "loop-reduce",
    "loop-reroll",
    "loop-unroll-and-jam",
    "loop-unswitch",
    "loop-vectorize",
    "loop-versioning",
    "loop-versioning-licm",
    "lower-constant-intrinsics",
    "lower-guard-intrinsic",
    "lower-matrix-intrinsics",
    "lower-widenable-condition",
    "mergeicmps",
    "mldst-motion",
    "nary-reassociate",
    "partially-inline-libcalls",
    "pgo-memop-opt",
    "prune-eh",
    "redundant-dbg-inst-elim",
    "rewrite-statepoints-for-gc",
    "rpo-functionattrs",
    "sancov",
    "scalarizer",
    "separate-const-offset-from-gep",
    "simple-loop-unswitch",
    "slp-vectorizer",
    "slsr",
    "speculative-execution",
]

# The full registry: every pass that can be run by name.
PASS_REGISTRY: Dict[str, PassFn] = dict(_IMPLEMENTED)
for _name in _NOOP_ACTION_NAMES:
    PASS_REGISTRY[_name] = _noop_pass(_name)
# Registered but excluded from the action space (see module docstring).
PASS_REGISTRY["gvn-sink"] = gvn_sink

# The phase-ordering action space: 124 pass actions, as in the paper.
ACTION_SPACE_PASSES: List[str] = sorted(_IMPLEMENTED) + sorted(_NOOP_ACTION_NAMES)
assert len(ACTION_SPACE_PASSES) == 124, (
    f"The phase-ordering action space must have 124 passes, got {len(ACTION_SPACE_PASSES)}"
)

# The default -Oz pipeline (optimize for size): redundancy and dead-code
# removal without size-increasing transformations such as unrolling.
OZ_PIPELINE: List[str] = [
    "simplifycfg",
    "sroa",
    "early-cse",
    "instcombine",
    "simplifycfg",
    "ipsccp",
    "globalopt",
    "deadargelim",
    "inline",
    "mem2reg",
    "sccp",
    "jump-threading",
    "correlated-propagation",
    "reassociate",
    "gvn",
    "instcombine",
    "licm",
    "loop-deletion",
    "dse",
    "adce",
    "simplifycfg",
    "instcombine",
    "globaldce",
    "constmerge",
    "mergefunc",
    "strip-dead-prototypes",
    "dce",
]

# The default -O3 pipeline (optimize for speed): as -Oz plus loop unrolling
# and more aggressive inlining.
O3_PIPELINE: List[str] = [
    "simplifycfg",
    "sroa",
    "early-cse",
    "instcombine",
    "simplifycfg",
    "ipsccp",
    "globalopt",
    "deadargelim",
    "partial-inliner",
    "inline",
    "mem2reg",
    "sccp",
    "jump-threading",
    "correlated-propagation",
    "reassociate",
    "loop-simplify",
    "licm",
    "loop-unroll",
    "instcombine",
    "gvn",
    "sccp",
    "instcombine",
    "loop-deletion",
    "dse",
    "adce",
    "simplifycfg",
    "instcombine",
    "globaldce",
    "strip-dead-prototypes",
    "dce",
]


def get_pass(name: str) -> PassFn:
    """Look up a pass by flag name (with or without the leading dash)."""
    key = name.lstrip("-")
    if key not in PASS_REGISTRY:
        raise LookupError(f"Unknown pass: {name!r}")
    return PASS_REGISTRY[key]


def run_pass(module: Module, name: str) -> bool:
    """Run a single named pass. Returns whether the module changed.

    A reported change bumps the module's monotonic ``version`` counter, which
    is what invalidates version-keyed observation caches. Passes must
    therefore be honest about ``changed`` — ``repro-compilergym lint``
    cross-checks every registered pass against the printed IR.
    """
    changed = get_pass(name)(module)
    if changed:
        module.bump_version()
    return changed


def run_pipeline(module: Module, names: List[str]) -> bool:
    """Run a sequence of named passes. Returns whether any of them changed
    the module."""
    changed = False
    for name in names:
        if run_pass(module, name):
            changed = True
    return changed
