"""The inst2vec observation space: per-statement embedding vectors.

inst2vec (Ben-Nun et al., NeurIPS 2018) maps each IR statement to a dense
embedding learned from a large corpus. Offline, without the pretrained
embedding table, this reproduction derives a deterministic 200-dimensional
embedding from a hash of the *normalized* statement text (identifiers replaced
by placeholders), preserving the properties the environment needs: two
occurrences of the same kind of statement map to the same vector, the
observation is a variable-length list of 200-D float vectors, and it is one of
the most expensive observations to compute (as in Table III of the paper).
"""

import hashlib
import re
from typing import List

import numpy as np

from repro.llvm.ir.module import Module
from repro.llvm.ir.printer import print_instruction

EMBEDDING_DIMS = 200

_IDENTIFIER_RE = re.compile(r"%[\w.$-]+")
_GLOBAL_RE = re.compile(r"@[\w.$-]+")
_NUMBER_RE = re.compile(r"(?<![\w%@.])-?\d+(\.\d+)?")


def inst2vec_preprocess(module: Module) -> List[str]:
    """Return the normalized statement strings (the ``Inst2vecPreprocessedText``
    observation space): identifiers and literals are replaced by placeholders."""
    statements = []
    for function in module.functions.values():
        for inst in function.instructions():
            text = print_instruction(inst)
            text = _IDENTIFIER_RE.sub("<%ID>", text)
            text = _GLOBAL_RE.sub("<@ID>", text)
            text = _NUMBER_RE.sub("<INT>", text)
            statements.append(text)
    return statements


def _embed(statement: str) -> np.ndarray:
    """Deterministically embed a normalized statement into a 200-D unit-scale vector."""
    digest = hashlib.sha256(statement.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    return rng.standard_normal(EMBEDDING_DIMS).astype(np.float32) / np.sqrt(EMBEDDING_DIMS)


def inst2vec_embedding_indices(module: Module, vocabulary_size: int = 8565) -> List[int]:
    """The ``Inst2vecEmbeddingIndices`` observation: a vocabulary index per statement."""
    indices = []
    for statement in inst2vec_preprocess(module):
        digest = hashlib.sha256(statement.encode("utf-8")).digest()
        indices.append(int.from_bytes(digest[:4], "little") % vocabulary_size)
    return indices


def inst2vec_embeddings(module: Module) -> List[np.ndarray]:
    """The ``Inst2vec`` observation: a list of 200-D embedding vectors, one per
    statement."""
    return [_embed(statement) for statement in inst2vec_preprocess(module)]
