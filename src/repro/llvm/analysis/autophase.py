"""The Autophase observation space: a 56-dimensional integer feature vector.

Autophase (Haj-Ali et al., MLSys 2020) describes programs with 56 counters of
IR structure — block-level CFG shape, instruction mix, operand kinds, and phi
statistics. The feature definitions below follow the published list, computed
over the simulated IR.
"""

from typing import List

import numpy as np

from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Argument, Constant

AUTOPHASE_FEATURE_NAMES: List[str] = [
    "BBNumArgsHi",              # Blocks with >=2 phi arguments per phi.
    "BBNumArgsLo",              # Blocks with <2 phi arguments.
    "onePred",                  # Blocks with a single predecessor.
    "onePredOneSuc",
    "onePredTwoSuc",
    "oneSuccessor",
    "twoPred",
    "twoPredOneSuc",
    "twoEach",
    "twoSuccessor",
    "morePreds",
    "BB03Phi",                  # Blocks with between 1 and 3 phis.
    "BBHiPhi",                  # Blocks with more than 3 phis.
    "BBNoPhi",
    "BeginPhi",                 # Phi nodes at the start of a block.
    "BranchCount",
    "returnInt",                # Returns of an integer constant.
    "CriticalCount",            # Critical CFG edges.
    "NumEdges",
    "const32Bit",
    "const64Bit",
    "numConstZeroes",
    "numConstOnes",
    "UncondBranches",
    "binaryConstArg",           # Binary operations with a constant operand.
    "NumAShrInst",
    "NumAddInst",
    "NumAllocaInst",
    "NumAndInst",
    "BlockMid",                 # Blocks with 15-500 instructions.
    "BlockLow",                 # Blocks with <15 instructions.
    "NumBitCastInst",
    "NumBrInst",
    "NumCallInst",
    "NumGetElementPtrInst",
    "NumICmpInst",
    "NumLShrInst",
    "NumLoadInst",
    "NumMulInst",
    "NumOrInst",
    "NumPHIInst",
    "NumRetInst",
    "NumSExtInst",
    "NumSelectInst",
    "NumShlInst",
    "NumStoreInst",
    "NumSubInst",
    "NumTruncInst",
    "NumXorInst",
    "NumZExtInst",
    "TotalBlocks",
    "TotalInsts",
    "TotalMemInst",
    "TotalFuncs",
    "ArgsPhi",                  # Total phi incoming arguments.
    "testUnary",                # Unary (single value operand) instructions.
]
AUTOPHASE_DIMS = 56
assert len(AUTOPHASE_FEATURE_NAMES) == AUTOPHASE_DIMS, len(AUTOPHASE_FEATURE_NAMES)

_OPCODE_FEATURES = {
    "ashr": "NumAShrInst",
    "add": "NumAddInst",
    "alloca": "NumAllocaInst",
    "and": "NumAndInst",
    "bitcast": "NumBitCastInst",
    "br": "NumBrInst",
    "call": "NumCallInst",
    "getelementptr": "NumGetElementPtrInst",
    "icmp": "NumICmpInst",
    "lshr": "NumLShrInst",
    "load": "NumLoadInst",
    "mul": "NumMulInst",
    "or": "NumOrInst",
    "phi": "NumPHIInst",
    "ret": "NumRetInst",
    "sext": "NumSExtInst",
    "select": "NumSelectInst",
    "shl": "NumShlInst",
    "store": "NumStoreInst",
    "sub": "NumSubInst",
    "trunc": "NumTruncInst",
    "xor": "NumXorInst",
    "zext": "NumZExtInst",
}


def autophase_function_features(function) -> np.ndarray:
    """One defined function's contribution to the 56-D Autophase vector.

    Every Autophase feature is a plain counter, so the module vector is the
    elementwise sum of the per-function vectors — which lets the session
    cache features per function and recompute only what a pass touched.
    """
    from repro.llvm.ir.cfg import predecessors

    features = {name: 0 for name in AUTOPHASE_FEATURE_NAMES}

    if not function.is_declaration:
        features["TotalFuncs"] += 1
        preds = predecessors(function)
        for block in function.blocks:
            features["TotalBlocks"] += 1
            num_preds = len(preds.get(block, []))
            successors = block.successors()
            num_succs = len(successors)
            features["NumEdges"] += num_succs
            if num_succs >= 2 and any(len(preds.get(s, [])) >= 2 for s in successors):
                features["CriticalCount"] += 1
            if num_preds == 1:
                features["onePred"] += 1
                if num_succs == 1:
                    features["onePredOneSuc"] += 1
                if num_succs == 2:
                    features["onePredTwoSuc"] += 1
            if num_preds == 2:
                features["twoPred"] += 1
                if num_succs == 1:
                    features["twoPredOneSuc"] += 1
                if num_succs == 2:
                    features["twoEach"] += 1
            if num_preds > 2:
                features["morePreds"] += 1
            if num_succs == 1:
                features["oneSuccessor"] += 1
            if num_succs == 2:
                features["twoSuccessor"] += 1

            phis = block.phis()
            if not phis:
                features["BBNoPhi"] += 1
            elif len(phis) <= 3:
                features["BB03Phi"] += 1
            else:
                features["BBHiPhi"] += 1
            if phis:
                features["BeginPhi"] += len(phis)
                max_args = max(len(list(phi.phi_incoming())) for phi in phis)
                if max_args >= 2:
                    features["BBNumArgsHi"] += 1
                else:
                    features["BBNumArgsLo"] += 1

            block_size = len(block.instructions)
            if block_size < 15:
                features["BlockLow"] += 1
            elif block_size <= 500:
                features["BlockMid"] += 1

            for inst in block.instructions:
                features["TotalInsts"] += 1
                feature_name = _OPCODE_FEATURES.get(inst.opcode)
                if feature_name:
                    features[feature_name] += 1
                if inst.opcode in ("load", "store", "alloca", "getelementptr"):
                    features["TotalMemInst"] += 1
                if inst.opcode == "br":
                    features["BranchCount"] += 1
                    if len(inst.operands) == 1:
                        features["UncondBranches"] += 1
                if inst.opcode == "ret" and inst.operands and isinstance(inst.operands[0], Constant):
                    features["returnInt"] += 1
                if inst.opcode == "phi":
                    features["ArgsPhi"] += len(inst.operands) // 2
                if inst.is_binary:
                    if any(isinstance(op, Constant) for op in inst.operands):
                        features["binaryConstArg"] += 1
                if len(inst.value_operands()) == 1 and inst.opcode != "ret":
                    features["testUnary"] += 1
                for operand in inst.operands:
                    if isinstance(operand, Constant) and operand.type.is_integer:
                        if operand.type.bits <= 32:
                            features["const32Bit"] += 1
                        else:
                            features["const64Bit"] += 1
                        if operand.value == 0:
                            features["numConstZeroes"] += 1
                        elif operand.value == 1:
                            features["numConstOnes"] += 1

    return np.array([features[name] for name in AUTOPHASE_FEATURE_NAMES], dtype=np.int64)


def autophase_features(module: Module) -> np.ndarray:
    """Compute the 56-D Autophase feature vector of a module."""
    total = np.zeros(AUTOPHASE_DIMS, dtype=np.int64)
    for function in module.functions.values():
        total += autophase_function_features(function)
    return total
