"""A generic worklist dataflow solver, with liveness and reaching definitions.

The framework follows the textbook shape: a :class:`DataflowProblem` declares
a direction, lattice operations (``meet`` over set union by default), and a
block transfer function; :func:`solve` iterates a worklist seeded in reverse
postorder (forward) or postorder (backward) until a fixed point.

Problems may also override ``edge_value`` to make the meet edge-sensitive —
liveness uses this so that a phi's incoming values are live only on the edges
they flow along, rather than conservatively in every predecessor.

Concrete instances:

- :func:`liveness`: backward may-analysis of live SSA values per block.
- :func:`reaching_definitions`: forward may-analysis of which instruction
  definitions reach each block.
- :func:`use_def_chains` / :func:`def_use_chains`: per-use resolution of SSA
  operands to their defining instructions (trivial in SSA form, but exposed
  in chain form for consumers like the verifier and feature extractors).
"""

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.cfg import predecessors, reverse_postorder
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.values import Argument, Value

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """A dataflow problem over sets of facts (the default lattice).

    Subclasses set :attr:`direction` and implement :meth:`transfer`; the
    remaining hooks have set-union defaults that fit may-analyses.
    """

    direction: str = FORWARD

    def boundary(self, function: Function) -> FrozenSet:
        """The value at the entry (forward) or at every exit (backward)."""
        del function
        return frozenset()

    def initial(self, function: Function, block: BasicBlock) -> FrozenSet:
        """The optimistic starting value of every block."""
        del function, block
        return frozenset()

    def meet(self, values: Iterable[FrozenSet]) -> FrozenSet:
        """Combine the values flowing in from neighboring blocks."""
        result = frozenset()
        for value in values:
            result |= value
        return result

    def edge_value(self, block: BasicBlock, neighbor: BasicBlock, value: FrozenSet) -> FrozenSet:
        """The neighbor's solution as seen along the ``block``/``neighbor`` edge.

        Forward problems see ``neighbor``'s OUT flowing into ``block``;
        backward problems see ``neighbor``'s IN flowing back into ``block``.
        The default is edge-insensitive.
        """
        del block, neighbor
        return value

    def transfer(self, block: BasicBlock, value: FrozenSet) -> FrozenSet:
        """Apply the block's transfer function to the incoming value."""
        raise NotImplementedError


class DataflowResult:
    """The fixed-point solution: a value at each block boundary.

    ``in_of``/``out_of`` are in *program order* regardless of the problem's
    direction: ``in_of`` is the value at the top of the block, ``out_of`` at
    the bottom.
    """

    def __init__(self, problem: DataflowProblem, entry_values: Dict, exit_values: Dict):
        self.problem = problem
        self._in = entry_values
        self._out = exit_values

    def in_of(self, block: BasicBlock) -> FrozenSet:
        return self._in.get(block, frozenset())

    def out_of(self, block: BasicBlock) -> FrozenSet:
        return self._out.get(block, frozenset())


def solve(function: Function, problem: DataflowProblem) -> DataflowResult:
    """Iterate ``problem`` over ``function``'s CFG to a fixed point."""
    if function.is_declaration:
        return DataflowResult(problem, {}, {})
    forward = problem.direction == FORWARD
    order = reverse_postorder(function)
    # Unreachable blocks still get a (locally converged) solution so that
    # consumers can query any block; append them after the reachable ones.
    order += [b for b in function.blocks if b not in set(order)]
    if not forward:
        order = list(reversed(order))
    preds = predecessors(function)
    neighbors = (
        {block: list(preds[block]) for block in function.blocks}
        if forward
        else {block: block.successors() for block in function.blocks}
    )

    boundary = problem.boundary(function)
    incoming: Dict[BasicBlock, FrozenSet] = {}
    outgoing: Dict[BasicBlock, FrozenSet] = {
        block: problem.initial(function, block) for block in function.blocks
    }
    position = {block: i for i, block in enumerate(order)}
    pending = dict.fromkeys(order)  # Insertion-ordered worklist set.
    while pending:
        block = next(iter(pending))
        del pending[block]
        flowed = [
            problem.edge_value(block, neighbor, outgoing[neighbor])
            for neighbor in neighbors[block]
        ]
        is_boundary_block = (block is function.entry) if forward else (not block.successors())
        if is_boundary_block:
            flowed.append(boundary)
        value = problem.meet(flowed)
        incoming[block] = value
        new_out = problem.transfer(block, value)
        if new_out != outgoing[block]:
            outgoing[block] = new_out
            dependents = (
                block.successors()
                if forward
                else [p for p in preds[block]]
            )
            for dependent in sorted(dependents, key=lambda b: position.get(b, 0)):
                pending[dependent] = None

    if forward:
        return DataflowResult(problem, incoming, outgoing)
    return DataflowResult(problem, outgoing, incoming)


# -- liveness ------------------------------------------------------------------


def _is_trackable(value: Value) -> bool:
    """Liveness tracks SSA values with defs: instructions and arguments."""
    return isinstance(value, (Instruction, Argument))


class LivenessProblem(DataflowProblem):
    """Backward may-analysis: which SSA values are live at block boundaries.

    Phi semantics follow SSA convention: a phi's incoming value is treated as
    used at the end of the corresponding predecessor (so it is live on that
    edge only), and phi results are defined at the top of their block.
    """

    direction = BACKWARD

    def __init__(self, function: Function):
        self.uses: Dict[BasicBlock, FrozenSet] = {}
        self.defs: Dict[BasicBlock, FrozenSet] = {}
        self.phi_uses: Dict[Tuple[BasicBlock, BasicBlock], FrozenSet] = {}
        for block in function.blocks:
            upward_exposed = set()
            defined = set()
            for inst in block.instructions:
                if inst.opcode != "phi":
                    for operand in inst.value_operands():
                        if _is_trackable(operand) and operand not in defined:
                            upward_exposed.add(operand)
                if inst.has_result:
                    defined.add(inst)
            self.uses[block] = frozenset(upward_exposed)
            self.defs[block] = frozenset(defined)
        for block in function.blocks:
            for phi in block.phis():
                for value, incoming in phi.phi_incoming():
                    if _is_trackable(value):
                        key = (incoming, block)
                        self.phi_uses[key] = self.phi_uses.get(key, frozenset()) | {value}

    def edge_value(self, block: BasicBlock, successor: BasicBlock, live_in: FrozenSet) -> FrozenSet:
        # Along the block->successor edge: the successor's live-in minus its
        # phi defs (phis are defs, handled by transfer via self.defs), plus
        # the values its phis read specifically from this predecessor.
        return live_in | self.phi_uses.get((block, successor), frozenset())

    def transfer(self, block: BasicBlock, live_out: FrozenSet) -> FrozenSet:
        return self.uses[block] | (live_out - self.defs[block])


def liveness(function: Function) -> DataflowResult:
    """Per-block live-in/live-out sets of SSA values.

    ``result.in_of(block)`` is the set of values live at the top of the block
    (before its phis execute); ``result.out_of(block)`` the set live at the
    bottom, including values read by successor phis along the outgoing edges.
    """
    return solve(function, LivenessProblem(function))


# -- reaching definitions ------------------------------------------------------


class ReachingDefinitionsProblem(DataflowProblem):
    """Forward may-analysis: which instruction defs reach each block.

    In SSA form every value has exactly one def, so there are no kills: a def
    reaches a block iff some CFG path from the def's block leads there. The
    analysis is still useful in aggregate (the ``ReachingDefs`` observation
    space) and doubles as a cross-check of dominance for the verifier tests.
    """

    direction = FORWARD

    def __init__(self, function: Function):
        self.gen: Dict[BasicBlock, FrozenSet] = {
            block: frozenset(inst for inst in block.instructions if inst.has_result)
            for block in function.blocks
        }

    def boundary(self, function: Function) -> FrozenSet:
        return frozenset(function.args)

    def transfer(self, block: BasicBlock, reaching_in: FrozenSet) -> FrozenSet:
        return reaching_in | self.gen[block]


def reaching_definitions(function: Function) -> DataflowResult:
    """Per-block reaching-definition sets (args + instruction results)."""
    return solve(function, ReachingDefinitionsProblem(function))


# -- use-def chains ------------------------------------------------------------


def use_def_chains(function: Function) -> Dict[Tuple[Instruction, int], Value]:
    """Map every SSA-value operand position to the value it reads.

    Keys are ``(instruction, operand_index)``; values are the defining
    :class:`Instruction`, :class:`Argument`, etc. Constants and block
    references are excluded.
    """
    chains: Dict[Tuple[Instruction, int], Value] = {}
    for block in function.blocks:
        for inst in block.instructions:
            for index, operand in enumerate(inst.operands):
                if inst._operand_is_block(index):
                    continue
                if _is_trackable(operand):
                    chains[(inst, index)] = operand
    return chains


def def_use_chains(function: Function) -> Dict[Value, List[Tuple[Instruction, int]]]:
    """Map every def (instruction or argument) to its list of uses."""
    chains: Dict[Value, List[Tuple[Instruction, int]]] = {}
    for (inst, index), definition in use_def_chains(function).items():
        chains.setdefault(definition, []).append((inst, index))
    return chains
