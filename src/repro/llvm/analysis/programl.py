"""The ProGraML observation space: a directed multigraph program representation.

ProGraML (Cummins et al., ICML 2021) represents a program as a graph whose
nodes are instructions, variables, and constants, connected by control, data,
and call edges. The graph is built with networkx so it can be consumed
directly by graph learning code (the Fig. 8 cost-model experiment trains a
gated graph neural network on these graphs).
"""

from typing import Dict

import networkx as nx

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Argument, Constant, GlobalVariable

# Edge flow types, as in ProGraML.
CONTROL_EDGE = "control"
DATA_EDGE = "data"
CALL_EDGE = "call"


def programl_graph(module: Module) -> nx.MultiDiGraph:
    """Build the ProGraML-style graph of a module.

    Node attributes: ``type`` (instruction/variable/constant), ``text`` (the
    opcode or value text), ``function`` (name of the containing function).
    Edge attributes: ``flow`` (control/data/call), ``position`` (operand index).
    """
    graph = nx.MultiDiGraph(name=module.name)
    node_ids: Dict[int, int] = {}
    next_id = 0

    def node_for(value, node_type: str, text: str, function_name: str = "") -> int:
        nonlocal next_id
        key = id(value)
        if key not in node_ids:
            node_ids[key] = next_id
            graph.add_node(next_id, type=node_type, text=text, function=function_name)
            next_id += 1
        return node_ids[key]

    # An external node represents the calling environment (as in ProGraML's
    # root node).
    root = node_for(object(), "instruction", "[external]")

    for function in module.functions.values():
        if function.is_declaration:
            continue
        # Argument variable nodes.
        for arg in function.args:
            node_for(arg, "variable", f"%{arg.name}", function.name)
        previous_in_block: Dict[BasicBlock, int] = {}
        for block in function.blocks:
            for inst in block.instructions:
                inst_node = node_for(inst, "instruction", inst.opcode, function.name)
                # Control edge from the previous instruction in the block.
                if block in previous_in_block:
                    graph.add_edge(previous_in_block[block], inst_node, flow=CONTROL_EDGE, position=0)
                previous_in_block[block] = inst_node
                # Data edges from operands to the instruction.
                for position, operand in enumerate(inst.operands):
                    if isinstance(operand, BasicBlock):
                        continue
                    if isinstance(operand, Constant):
                        operand_node = node_for(operand, "constant", str(operand.value), function.name)
                    elif isinstance(operand, (Argument, GlobalVariable, Instruction)):
                        text = operand.short() if not isinstance(operand, Instruction) else operand.opcode
                        node_type = "variable" if not isinstance(operand, Instruction) else "instruction"
                        operand_node = node_for(operand, node_type, text, function.name)
                    else:
                        continue
                    graph.add_edge(operand_node, inst_node, flow=DATA_EDGE, position=position)
                # Call edges to the callee's entry instruction.
                if inst.opcode == "call":
                    callee = module.function(inst.attrs.get("callee", ""))
                    if callee is not None and not callee.is_declaration and callee.entry is not None:
                        entry_inst = callee.entry.instructions[0] if callee.entry.instructions else None
                        if entry_inst is not None:
                            callee_node = node_for(entry_inst, "instruction", entry_inst.opcode, callee.name)
                            graph.add_edge(inst_node, callee_node, flow=CALL_EDGE, position=0)
        # Control edges across block boundaries (terminator -> successor head).
        for block in function.blocks:
            terminator = block.terminator
            if terminator is None:
                continue
            for successor in block.successors():
                if successor.instructions:
                    graph.add_edge(
                        node_ids[id(terminator)],
                        node_for(successor.instructions[0], "instruction", successor.instructions[0].opcode, function.name),
                        flow=CONTROL_EDGE,
                        position=0,
                    )
        # Call edge from the external root to the entry of main.
        if function.name == "main" and function.entry is not None and function.entry.instructions:
            graph.add_edge(
                root,
                node_ids[id(function.entry.instructions[0])],
                flow=CALL_EDGE,
                position=0,
            )

    return graph
