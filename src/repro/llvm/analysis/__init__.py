"""Static analyses: feature extractors (observation spaces) and the dataflow
framework backing the semantic verifier."""

from repro.llvm.analysis.instcount import INSTCOUNT_FEATURE_NAMES, instcount_features
from repro.llvm.analysis.autophase import AUTOPHASE_FEATURE_NAMES, autophase_features
from repro.llvm.analysis.inst2vec import inst2vec_embeddings, inst2vec_preprocess
from repro.llvm.analysis.programl import programl_graph
from repro.llvm.analysis.dominators import (
    DominatorTree,
    dominance_frontiers,
    dominator_tree,
    dom_tree_depths,
)
from repro.llvm.analysis.dataflow import (
    DataflowProblem,
    DataflowResult,
    def_use_chains,
    liveness,
    reaching_definitions,
    solve,
    use_def_chains,
)
from repro.llvm.analysis.summaries import (
    LIVENESS_DIMS,
    LIVENESS_FEATURE_NAMES,
    REACHINGDEFS_DIMS,
    REACHINGDEFS_FEATURE_NAMES,
    liveness_features,
    max_domtree_depth,
    reachingdefs_features,
)

__all__ = [
    "AUTOPHASE_FEATURE_NAMES",
    "DataflowProblem",
    "DataflowResult",
    "DominatorTree",
    "INSTCOUNT_FEATURE_NAMES",
    "LIVENESS_DIMS",
    "LIVENESS_FEATURE_NAMES",
    "REACHINGDEFS_DIMS",
    "REACHINGDEFS_FEATURE_NAMES",
    "autophase_features",
    "def_use_chains",
    "dom_tree_depths",
    "dominance_frontiers",
    "dominator_tree",
    "inst2vec_embeddings",
    "inst2vec_preprocess",
    "instcount_features",
    "liveness",
    "liveness_features",
    "max_domtree_depth",
    "programl_graph",
    "reaching_definitions",
    "reachingdefs_features",
    "solve",
    "use_def_chains",
]
