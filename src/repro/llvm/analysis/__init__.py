"""Feature extractors (observation spaces) for the LLVM environment."""

from repro.llvm.analysis.instcount import INSTCOUNT_FEATURE_NAMES, instcount_features
from repro.llvm.analysis.autophase import AUTOPHASE_FEATURE_NAMES, autophase_features
from repro.llvm.analysis.inst2vec import inst2vec_embeddings, inst2vec_preprocess
from repro.llvm.analysis.programl import programl_graph

__all__ = [
    "AUTOPHASE_FEATURE_NAMES",
    "INSTCOUNT_FEATURE_NAMES",
    "autophase_features",
    "inst2vec_embeddings",
    "inst2vec_preprocess",
    "instcount_features",
    "programl_graph",
]
