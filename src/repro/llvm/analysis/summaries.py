"""Summary-vector observation spaces derived from the dataflow analyses.

Each space compresses a per-block analysis (liveness, reaching definitions,
dominator-tree shape) into a small fixed-shape integer vector, so the values
flow unchanged through :class:`ObservationView`, vec pools, the daemon wire
format, and the gateway. Everything here is a deterministic aggregate —
independent of set iteration order — so observations compare equal across
transports and python versions.
"""

from typing import List

import numpy as np

from repro.llvm.analysis.dataflow import liveness, reaching_definitions
from repro.llvm.analysis.dominators import DominatorTree
from repro.llvm.ir.module import Module

LIVENESS_FEATURE_NAMES: List[str] = [
    "TotalBlocks",
    "TotalLiveIn",
    "TotalLiveOut",
    "MaxLiveIn",
    "MaxLiveOut",
    "TotalTrackedValues",
    "TotalPhiEdgeUses",
    "BlocksWithEmptyLiveIn",
]
LIVENESS_DIMS = len(LIVENESS_FEATURE_NAMES)

REACHINGDEFS_FEATURE_NAMES: List[str] = [
    "TotalBlocks",
    "TotalReachingIn",
    "TotalReachingOut",
    "MaxReachingIn",
    "MaxReachingOut",
    "TotalDefs",
    "TotalArgs",
    "UnreachableBlocks",
]
REACHINGDEFS_DIMS = len(REACHINGDEFS_FEATURE_NAMES)


# Dimensions that combine across functions with max() rather than sum()
# (MaxLiveIn/MaxLiveOut and MaxReachingIn/MaxReachingOut respectively).
LIVENESS_MAX_FEATURE_INDICES = (3, 4)
REACHINGDEFS_MAX_FEATURE_INDICES = (3, 4)


def liveness_function_features(function) -> np.ndarray:
    """One defined function's liveness summary (zeros for declarations)."""
    features = np.zeros(LIVENESS_DIMS, dtype=np.int64)
    if function.is_declaration:
        return features
    result = liveness(function)
    problem = result.problem
    features[5] += len(function.args) + sum(
        1 for inst in function.instructions() if inst.has_result
    )
    features[6] += sum(len(uses) for uses in problem.phi_uses.values())
    for block in function.blocks:
        live_in = len(result.in_of(block))
        live_out = len(result.out_of(block))
        features[0] += 1
        features[1] += live_in
        features[2] += live_out
        features[3] = max(features[3], live_in)
        features[4] = max(features[4], live_out)
        if live_in == 0:
            features[7] += 1
    return features


def reachingdefs_function_features(function) -> np.ndarray:
    """One defined function's reaching-defs summary (zeros for declarations)."""
    features = np.zeros(REACHINGDEFS_DIMS, dtype=np.int64)
    if function.is_declaration:
        return features
    result = reaching_definitions(function)
    tree = DominatorTree(function)
    features[5] += sum(1 for inst in function.instructions() if inst.has_result)
    features[6] += len(function.args)
    features[7] += len(tree.unreachable)
    for block in function.blocks:
        reach_in = len(result.in_of(block))
        reach_out = len(result.out_of(block))
        features[0] += 1
        features[1] += reach_in
        features[2] += reach_out
        features[3] = max(features[3], reach_in)
        features[4] = max(features[4], reach_out)
    return features


def _combine(vectors, dims: int, max_indices) -> np.ndarray:
    total = np.zeros(dims, dtype=np.int64)
    vectors = list(vectors)
    for vector in vectors:
        total += vector
    for index in max_indices:
        total[index] = max((int(vector[index]) for vector in vectors), default=0)
    return total


def liveness_features(module: Module) -> np.ndarray:
    """Aggregate live-range pressure statistics over all defined functions."""
    return _combine(
        (liveness_function_features(f) for f in module.functions.values()),
        LIVENESS_DIMS,
        LIVENESS_MAX_FEATURE_INDICES,
    )


def reachingdefs_features(module: Module) -> np.ndarray:
    """Aggregate reaching-definition statistics over all defined functions."""
    return _combine(
        (reachingdefs_function_features(f) for f in module.functions.values()),
        REACHINGDEFS_DIMS,
        REACHINGDEFS_MAX_FEATURE_INDICES,
    )


def function_domtree_depth(function) -> int:
    """The deepest dominator-tree node of one function (0 for declarations)."""
    if function.is_declaration:
        return 0
    tree = DominatorTree(function)
    if not tree.depth:
        return 0
    return max(tree.depth.values())


def max_domtree_depth(module: Module) -> int:
    """The deepest dominator-tree node across all defined functions."""
    return max(
        (function_domtree_depth(f) for f in module.functions.values()), default=0
    )
