"""Dominator tree and dominance frontiers.

The immediate-dominator tree is computed with the Cooper–Harvey–Kennedy
iterative algorithm over reverse postorder — simpler than Lengauer–Tarjan and,
at the module sizes the benchmarks use, just as fast in practice. The tree is
the workhorse of the semantic verifier (every SSA use must be dominated by its
def) and of the ``DomTreeDepth`` observation space; dominance frontiers are
exposed for phi-placement-style analyses.

Only blocks reachable from the entry participate: unreachable blocks have no
immediate dominator and are reported via :attr:`DominatorTree.unreachable`.
"""

from typing import Dict, List, Optional, Set

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.cfg import predecessors, reverse_postorder
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction


class DominatorTree:
    """The dominator tree of a function's reachable CFG.

    Attributes:
        root: The entry block (``None`` for declarations).
        idom: Immediate dominator of each reachable block (entry maps to
            ``None``).
        children: Dominator-tree children of each reachable block.
        depth: Depth of each reachable block in the tree (entry is 0).
        unreachable: Blocks not reachable from the entry, in function order.
    """

    def __init__(self, function: Function):
        self.function = function
        self.root: Optional[BasicBlock] = function.entry
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        self.depth: Dict[BasicBlock, int] = {}
        self._rpo_index: Dict[BasicBlock, int] = {}
        self.unreachable: List[BasicBlock] = []
        if self.root is None:
            return

        order = reverse_postorder(function)
        self._rpo_index = {block: i for i, block in enumerate(order)}
        reachable = set(order)
        self.unreachable = [b for b in function.blocks if b not in reachable]
        preds = predecessors(function)

        # Cooper–Harvey–Kennedy: iterate idom approximations to a fixed point.
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {self.root: self.root}
        changed = True
        while changed:
            changed = False
            for block in order:
                if block is self.root:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in preds[block]:
                    if pred not in idom:
                        continue  # Not yet processed (or unreachable).
                    new_idom = pred if new_idom is None else self._intersect(idom, pred, new_idom)
                if new_idom is not None and idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        idom[self.root] = None
        self.idom = idom
        self.children = {block: [] for block in order}
        for block in order:
            parent = idom[block]
            if parent is not None:
                self.children[parent].append(block)
        # Depths via BFS from the root (children lists are in RPO already).
        self.depth[self.root] = 0
        worklist = [self.root]
        while worklist:
            block = worklist.pop()
            for child in self.children[block]:
                self.depth[child] = self.depth[block] + 1
                worklist.append(child)

    def _intersect(self, idom, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        """Nearest common ancestor of two blocks in the (partial) idom tree."""
        index = self._rpo_index
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    # -- queries ---------------------------------------------------------------

    @property
    def reachable(self) -> Set[BasicBlock]:
        """The set of blocks reachable from the entry."""
        return set(self.idom)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexively).

        Unreachable blocks neither dominate nor are dominated by anything
        (matching LLVM, where dominance queries on unreachable code are
        vacuous and the verifier skips them).
        """
        if a not in self.idom or b not in self.idom:
            return False
        while b is not None and self.depth.get(b, 0) > self.depth[a]:
            b = self.idom[b]
        return a is b

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def instruction_dominates(self, definition: Instruction, use: Instruction) -> bool:
        """Whether ``definition``'s value is available at ``use``.

        Within one block, an instruction dominates every later instruction;
        phi nodes conceptually define their value at the top of the block.
        Phi *operands* must not be checked with this helper — an incoming
        value only needs to dominate the end of its incoming block (see
        :meth:`value_reaches_end_of_block`).
        """
        def_block, use_block = definition.parent, use.parent
        if def_block is None or use_block is None:
            return False
        if def_block is not use_block:
            return self.dominates(def_block, use_block)
        if use.opcode == "phi":
            # A non-phi def in the same block never dominates a phi above it;
            # a phi def does (all phis define "simultaneously" at the top).
            return definition.opcode == "phi"
        if definition.opcode == "phi" and use.opcode != "phi":
            return True
        instructions = def_block.instructions
        return instructions.index(definition) < instructions.index(use)

    def value_reaches_end_of_block(self, definition: Instruction, block: BasicBlock) -> bool:
        """Whether ``definition`` is available at the terminator of ``block``.

        This is the dominance rule for phi operands: the incoming value for
        predecessor P must dominate the *end* of P, not the phi itself.
        """
        def_block = definition.parent
        if def_block is None:
            return False
        return self.dominates(def_block, block)

    def frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Dominance frontiers of every reachable block (Cytron et al.)."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {block: set() for block in self.idom}
        preds = predecessors(self.function)
        for block in self.idom:
            block_preds = [p for p in preds[block] if p in self.idom]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner = pred
                while runner is not None and runner is not self.idom[block]:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier

    def __repr__(self) -> str:
        return (
            f"DominatorTree(@{self.function.name}, {len(self.idom)} reachable, "
            f"{len(self.unreachable)} unreachable)"
        )


def dominator_tree(function: Function) -> DominatorTree:
    """Build the dominator tree of a function."""
    return DominatorTree(function)


def dominance_frontiers(function: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Convenience wrapper: the dominance frontiers of every reachable block."""
    return DominatorTree(function).frontiers()


def dom_tree_depths(function: Function) -> Dict[BasicBlock, int]:
    """Map each reachable block to its dominator-tree depth (entry is 0)."""
    return dict(DominatorTree(function).depth)
