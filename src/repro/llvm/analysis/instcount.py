"""The InstCount observation space: a 70-dimensional integer feature vector.

As in LLVM's ``-instcount`` analysis, the vector contains the total number of
instructions, basic blocks, and functions followed by one counter per opcode.
The simulated IR has fewer opcodes than LLVM, so the remaining dimensions
count derived structural quantities, keeping the 70-D shape of the paper.
"""

from typing import List

import numpy as np

from repro.llvm.ir.instructions import (
    BINARY_OPCODES,
    CAST_OPCODES,
    COMPARE_OPCODES,
    MEMORY_OPCODES,
    OTHER_OPCODES,
    TERMINATOR_OPCODES,
)
from repro.llvm.ir.module import Module

# One counter per opcode, in a fixed order.
_OPCODE_ORDER: List[str] = sorted(
    BINARY_OPCODES | COMPARE_OPCODES | CAST_OPCODES | MEMORY_OPCODES | TERMINATOR_OPCODES | OTHER_OPCODES
)

# Derived structural counters that pad the vector to exactly 70 dimensions.
_DERIVED_FEATURES: List[str] = [
    "TotalGlobals",
    "TotalArgs",
    "TotalConstOperands",
    "TotalBlocksWithTwoSuccessors",
    "TotalBlocksWithOnePredecessor",
    "TotalCallsToDeclaredFunctions",
    "TotalPureCalls",
    "TotalConditionalBranches",
    "TotalUnconditionalBranches",
    "TotalPhiIncomingValues",
    "MaxLoopDepth",
    "TotalLoops",
    "TotalDeclarations",
    "TotalReturnsOfConstant",
    "TotalIntegerConstants",
    "TotalFloatConstants",
    "TotalOperands",
    "TotalNamedValues",
    "MaxBlockInstructions",
    "TotalEmptyishBlocks",
    "TotalSwitchCases",
    "TotalCommutativeOps",
    "TotalStoresOfConstants",
    "TotalSelfLoops",
    "TotalCfgEdges",
    "TotalSingleOperandInsts",
]

INSTCOUNT_FEATURE_NAMES: List[str] = (
    ["TotalInsts", "TotalBlocks", "TotalFuncs"] + [f"Num{op}Inst" for op in _OPCODE_ORDER] + _DERIVED_FEATURES
)
INSTCOUNT_DIMS = 70

# Trim or assert the dimensionality to exactly 70 features.
INSTCOUNT_FEATURE_NAMES = INSTCOUNT_FEATURE_NAMES[:INSTCOUNT_DIMS]
assert len(INSTCOUNT_FEATURE_NAMES) == INSTCOUNT_DIMS, len(INSTCOUNT_FEATURE_NAMES)

# Features that combine across functions with max() rather than sum(). Only
# the indices that survived the 70-D trim participate.
INSTCOUNT_MAX_FEATURE_INDICES: List[int] = [
    INSTCOUNT_FEATURE_NAMES.index(name)
    for name in ("MaxLoopDepth", "MaxBlockInstructions")
    if name in INSTCOUNT_FEATURE_NAMES
]


def _vectorize(total_insts: int, total_blocks: int, total_functions: int,
               opcode_counts: dict, derived: dict) -> np.ndarray:
    values = [total_insts, total_blocks, total_functions]
    values += [opcode_counts[op] for op in _OPCODE_ORDER]
    values += [derived[name] for name in _DERIVED_FEATURES]
    return np.array(values[:INSTCOUNT_DIMS], dtype=np.int64)


def instcount_function_features(function, module: Module) -> np.ndarray:
    """One function's contribution to the 70-D InstCount vector.

    Declarations contribute only ``TotalDeclarations``; module-level features
    (``TotalGlobals``) live in :func:`instcount_module_features`. Summing the
    per-function vectors — with max-combination at
    ``INSTCOUNT_MAX_FEATURE_INDICES`` — reproduces :func:`instcount_features`
    exactly, which is what lets the session cache features per function.

    Note the ``call`` features consult ``module`` for the callee's
    declaration status, so a cached per-function vector is only valid while
    the module's set of (name, is_declaration) pairs is unchanged.
    """
    from repro.llvm.ir.cfg import natural_loops, predecessors
    from repro.llvm.ir.values import Constant

    opcode_counts = {op: 0 for op in _OPCODE_ORDER}
    derived = {name: 0 for name in _DERIVED_FEATURES}
    total_insts = 0
    total_blocks = 0
    total_functions = 0

    if function.is_declaration:
        derived["TotalDeclarations"] = 1
        return _vectorize(total_insts, total_blocks, total_functions, opcode_counts, derived)

    total_functions = 1
    derived["TotalArgs"] += len(function.args)
    preds = predecessors(function)
    loops = natural_loops(function)
    derived["TotalLoops"] += len(loops)
    if loops:
        derived["MaxLoopDepth"] = max(
            derived["MaxLoopDepth"], max(loop.depth for loop in loops)
        )
    for block in function.blocks:
        total_blocks += 1
        derived["MaxBlockInstructions"] = max(
            derived["MaxBlockInstructions"], len(block.instructions)
        )
        if len(block.instructions) <= 1:
            derived["TotalEmptyishBlocks"] += 1
        successors = block.successors()
        derived["TotalCfgEdges"] += len(successors)
        if len(successors) == 2:
            derived["TotalBlocksWithTwoSuccessors"] += 1
        if len(preds.get(block, [])) == 1:
            derived["TotalBlocksWithOnePredecessor"] += 1
        if block in successors:
            derived["TotalSelfLoops"] += 1
        for inst in block.instructions:
            total_insts += 1
            opcode_counts[inst.opcode] = opcode_counts.get(inst.opcode, 0) + 1
            derived["TotalOperands"] += len(inst.operands)
            if len(inst.operands) == 1:
                derived["TotalSingleOperandInsts"] += 1
            if inst.name:
                derived["TotalNamedValues"] += 1
            if inst.is_commutative:
                derived["TotalCommutativeOps"] += 1
            for operand in inst.operands:
                if isinstance(operand, Constant):
                    derived["TotalConstOperands"] += 1
                    if operand.type.is_float:
                        derived["TotalFloatConstants"] += 1
                    else:
                        derived["TotalIntegerConstants"] += 1
            if inst.opcode == "br":
                if len(inst.operands) == 3:
                    derived["TotalConditionalBranches"] += 1
                else:
                    derived["TotalUnconditionalBranches"] += 1
            elif inst.opcode == "switch":
                derived["TotalSwitchCases"] += (len(inst.operands) - 2) // 2
            elif inst.opcode == "phi":
                derived["TotalPhiIncomingValues"] += len(inst.operands) // 2
            elif inst.opcode == "call":
                callee = module.function(inst.attrs.get("callee", ""))
                if callee is None or callee.is_declaration:
                    derived["TotalCallsToDeclaredFunctions"] += 1
                if inst.attrs.get("pure"):
                    derived["TotalPureCalls"] += 1
            elif inst.opcode == "ret" and inst.operands and isinstance(inst.operands[0], Constant):
                derived["TotalReturnsOfConstant"] += 1
            elif inst.opcode == "store" and isinstance(inst.operands[0], Constant):
                derived["TotalStoresOfConstants"] += 1

    return _vectorize(total_insts, total_blocks, total_functions, opcode_counts, derived)


def instcount_module_features(module: Module) -> np.ndarray:
    """Module-level features that belong to no single function."""
    opcode_counts = {op: 0 for op in _OPCODE_ORDER}
    derived = {name: 0 for name in _DERIVED_FEATURES}
    derived["TotalGlobals"] = len(module.globals)
    return _vectorize(0, 0, 0, opcode_counts, derived)


def combine_function_features(
    vectors: List[np.ndarray],
    dims: int,
    max_indices: List[int] = (),
    extra: np.ndarray = None,
) -> np.ndarray:
    """Aggregate per-function feature vectors into a module vector.

    Every dimension sums across functions except ``max_indices``, which take
    the max (e.g. ``MaxLoopDepth``). ``extra`` adds module-level features.
    """
    total = np.zeros(dims, dtype=np.int64)
    for vector in vectors:
        total += vector
    for index in max_indices:
        total[index] = max((int(vector[index]) for vector in vectors), default=0)
    if extra is not None:
        total += extra
    return total


def instcount_features(module: Module) -> np.ndarray:
    """Compute the 70-D InstCount feature vector of a module."""
    return combine_function_features(
        [instcount_function_features(f, module) for f in module.functions.values()],
        INSTCOUNT_DIMS,
        INSTCOUNT_MAX_FEATURE_INDICES,
        extra=instcount_module_features(module),
    )
