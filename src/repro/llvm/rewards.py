"""Reward spaces for the LLVM phase-ordering environment.

Three metrics (code size, binary size, runtime), each exposed raw and scaled
against the gains achieved by the compiler's default pipelines (-Oz for size,
-O3 for runtime), exactly as described in Section V-A of the paper.
"""

from typing import List, Optional

from repro.core.spaces.reward import Reward


class DeltaReward(Reward):
    """Reward = decrease in a scalar metric observation since the last step."""

    def __init__(self, name: str, observation_name: str, deterministic: bool, platform_dependent: bool):
        super().__init__(
            name=name,
            observation_spaces=[observation_name],
            default_value=0,
            default_negates_returns=True,
            deterministic=deterministic,
            platform_dependent=platform_dependent,
        )
        self.observation_name = observation_name
        self.previous_value: Optional[float] = None

    def reset(self, benchmark: str, observation_view) -> None:
        del benchmark
        self.previous_value = None

    def update(self, actions, observations, observation_view) -> float:
        del actions, observation_view
        value = float(observations[0])
        if self.previous_value is None:
            self.previous_value = value
            return 0.0
        reward = self.previous_value - value
        self.previous_value = value
        return reward


class BaselineScaledReward(DeltaReward):
    """A :class:`DeltaReward` scaled against a reference pipeline's total gain.

    The per-step reward is ``(previous - new) / (O0 - baseline)`` where
    ``baseline`` is the metric after -Oz or -O3. The episode return therefore
    reaches 1.0 exactly when the agent matches the default pipeline, and
    exceeds 1.0 when it beats it.
    """

    def __init__(
        self,
        name: str,
        observation_name: str,
        unoptimized_observation: str,
        baseline_observation: str,
        deterministic: bool,
        platform_dependent: bool,
    ):
        super().__init__(
            name=name,
            observation_name=observation_name,
            deterministic=deterministic,
            platform_dependent=platform_dependent,
        )
        self.unoptimized_observation = unoptimized_observation
        self.baseline_observation = baseline_observation
        self.scale: float = 1.0

    def reset(self, benchmark: str, observation_view) -> None:
        super().reset(benchmark, observation_view)
        unoptimized = float(observation_view[self.unoptimized_observation])
        baseline = float(observation_view[self.baseline_observation])
        gain = unoptimized - baseline
        # A baseline that achieves no improvement gives a unit scale, matching
        # the upstream behaviour of falling back to absolute deltas.
        self.scale = 1.0 / gain if gain > 0 else 1.0

    def update(self, actions, observations, observation_view) -> float:
        return super().update(actions, observations, observation_view) * self.scale


class NormalizedReward(DeltaReward):
    """A :class:`DeltaReward` scaled by the unoptimized metric value, so the
    episode return is the fraction of the original size removed."""

    def __init__(self, name: str, observation_name: str, unoptimized_observation: str,
                 deterministic: bool, platform_dependent: bool):
        super().__init__(
            name=name,
            observation_name=observation_name,
            deterministic=deterministic,
            platform_dependent=platform_dependent,
        )
        self.unoptimized_observation = unoptimized_observation
        self.scale: float = 1.0

    def reset(self, benchmark: str, observation_view) -> None:
        super().reset(benchmark, observation_view)
        unoptimized = float(observation_view[self.unoptimized_observation])
        self.scale = 1.0 / unoptimized if unoptimized > 0 else 1.0

    def update(self, actions, observations, observation_view) -> float:
        return super().update(actions, observations, observation_view) * self.scale


def make_llvm_rewards() -> List[Reward]:
    """The reward spaces of the LLVM environment."""
    return [
        DeltaReward(
            "IrInstructionCount", "IrInstructionCount", deterministic=True, platform_dependent=False
        ),
        NormalizedReward(
            "IrInstructionCountNorm", "IrInstructionCount", "IrInstructionCountO0",
            deterministic=True, platform_dependent=False,
        ),
        BaselineScaledReward(
            "IrInstructionCountO3", "IrInstructionCount", "IrInstructionCountO0",
            "IrInstructionCountO3", deterministic=True, platform_dependent=False,
        ),
        BaselineScaledReward(
            "IrInstructionCountOz", "IrInstructionCount", "IrInstructionCountO0",
            "IrInstructionCountOz", deterministic=True, platform_dependent=False,
        ),
        DeltaReward(
            "ObjectTextSizeBytes", "ObjectTextSizeBytes", deterministic=True, platform_dependent=True
        ),
        NormalizedReward(
            "ObjectTextSizeNorm", "ObjectTextSizeBytes", "ObjectTextSizeO0",
            deterministic=True, platform_dependent=True,
        ),
        BaselineScaledReward(
            "ObjectTextSizeO3", "ObjectTextSizeBytes", "ObjectTextSizeO0", "ObjectTextSizeO3",
            deterministic=True, platform_dependent=True,
        ),
        BaselineScaledReward(
            "ObjectTextSizeOz", "ObjectTextSizeBytes", "ObjectTextSizeO0", "ObjectTextSizeOz",
            deterministic=True, platform_dependent=True,
        ),
        DeltaReward("Runtime", "Runtime", deterministic=False, platform_dependent=True),
    ]
