"""Exception hierarchy for the repro (CompilerGym reproduction) package.

The exception names mirror the ones exposed by the original CompilerGym
release so that user code ports across with no changes.
"""


class CompilerGymError(Exception):
    """Base class for all errors raised by this package."""


class ValidationError(CompilerGymError):
    """A state or semantics validation check failed.

    Attributes:
        type: A short machine-readable category for the error.
        data: Optional structured payload describing the failure.
    """

    def __init__(self, type: str, data: dict = None):  # noqa: A002 - match upstream API
        self.type = type
        self.data = dict(data or {})
        super().__init__(type)

    def __repr__(self) -> str:
        return f"ValidationError(type={self.type!r}, data={self.data!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, ValidationError):
            return NotImplemented
        return self.type == other.type and self.data == other.data

    def __hash__(self) -> int:
        return hash(self.type)


class SessionNotFound(CompilerGymError):
    """The requested compilation session does not exist in the service."""


class ServiceError(CompilerGymError):
    """The compiler service encountered an internal error."""


class ServiceOSError(ServiceError):
    """The compiler service encountered an operating-system level error."""


class ServiceInitError(ServiceError):
    """The compiler service failed to initialize."""


class ServiceTransportError(ServiceError):
    """Communication with the compiler service failed."""


class ServiceIsClosed(ServiceError):
    """An operation was attempted on a closed service."""


class ServiceIsDown(ServiceError):
    """The service (or the fleet member hosting the session) is unreachable.

    Raised per-session by the gateway's ``step_sessions`` fan-out when the
    fleet is partially down: sessions on surviving daemons keep stepping and
    only the sessions whose daemon is dead (or circuit-broken) receive this
    error, instead of the whole batch failing. Non-retryable — the session's
    episode ends through the environment's fault-tolerance path.
    """


class PermissionDeniedError(ServiceError):
    """The service rejected the call on authentication or ownership grounds.

    Raised when a client presents no (or an invalid) auth token to a service
    that requires one, or when a session-scoped call names a session owned
    by a different tenant. Never retried: no amount of restarting makes a
    foreign session yours.
    """


class EnvironmentNotSupported(ServiceInitError):
    """The environment is not supported on the current system."""


class BenchmarkInitError(CompilerGymError, ValueError):
    """A benchmark could not be initialized (missing, malformed, etc.)."""


class DatasetInitError(CompilerGymError):
    """A dataset could not be initialized."""


class DownloadFailed(CompilerGymError, IOError):
    """Downloading a dataset artifact failed."""


class TooManyRequests(DownloadFailed):
    """The dataset server rejected the request due to rate limiting."""


class OpaqueFunctionError(CompilerGymError):
    """The simulated interpreter reached a call it cannot evaluate."""
