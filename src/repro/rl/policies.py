"""Linear function approximators shared by the RL agents."""

from typing import Optional, Tuple

import numpy as np


class FeatureScaler:
    """Online feature preprocessing: log1p compression plus running
    standardization.

    IR feature vectors are raw counters spanning several orders of magnitude;
    without compression the linear agents see wildly varying gradient scales.
    """

    def __init__(self, dim: int):
        self.dim = dim
        self.count = 1e-4
        self.mean = np.zeros(dim)
        self.m2 = np.ones(dim)

    def __call__(self, observation, update: bool = True) -> np.ndarray:
        x = np.log1p(np.maximum(np.asarray(observation, dtype=np.float64), 0.0))
        if update:
            self.count += 1
            delta = x - self.mean
            self.mean += delta / self.count
            self.m2 += delta * (x - self.mean)
        std = np.sqrt(self.m2 / max(1.0, self.count)) + 1e-6
        return np.clip((x - self.mean) / std, -5.0, 5.0)

    def get_state(self) -> dict:
        """The running statistics, picklable for actor→learner transfer."""
        return {"count": self.count, "mean": self.mean.copy(), "m2": self.m2.copy()}

    def set_state(self, state: dict) -> None:
        self.count = float(state["count"])
        self.mean = np.array(state["mean"], dtype=np.float64)
        self.m2 = np.array(state["m2"], dtype=np.float64)

    @staticmethod
    def merge_states(states) -> dict:
        """Combine running statistics from several scalers into one state.

        Chan et al.'s parallel variance merge: exact for the counts and
        means, and for the M2 sums up to the (tiny) initialization priors
        each scaler starts from. Lets a distributed learner adopt the
        feature statistics its actors standardized with.
        """
        merged = None
        for state in states:
            count = float(state["count"])
            mean = np.array(state["mean"], dtype=np.float64)
            m2 = np.array(state["m2"], dtype=np.float64)
            if merged is None:
                merged = {"count": count, "mean": mean, "m2": m2}
                continue
            total = merged["count"] + count
            delta = mean - merged["mean"]
            merged["mean"] = merged["mean"] + delta * (count / total)
            merged["m2"] = (
                merged["m2"] + m2 + delta**2 * (merged["count"] * count / total)
            )
            merged["count"] = total
        if merged is None:
            raise ValueError("merge_states() requires at least one state")
        return merged


def _assign_weights(model, weights: Tuple[np.ndarray, np.ndarray]) -> None:
    """Install a ``(weights, bias)`` pair onto a linear model, shape-checked."""
    new_weights, new_bias = weights
    new_weights = np.array(new_weights, dtype=np.float64)
    new_bias = np.array(new_bias, dtype=np.float64)
    if new_weights.shape != model.weights.shape or new_bias.shape != model.bias.shape:
        raise ValueError(
            f"Weight shapes {new_weights.shape}/{new_bias.shape} do not match "
            f"the model's {model.weights.shape}/{model.bias.shape}"
        )
    model.weights = new_weights
    model.bias = new_bias


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


class LinearPolicy:
    """A softmax policy with linear logits."""

    def __init__(self, obs_dim: int, num_actions: int, learning_rate: float = 0.01, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(scale=0.01, size=(num_actions, obs_dim))
        self.bias = np.zeros(num_actions)
        self.learning_rate = learning_rate
        self.num_actions = num_actions

    def logits(self, observation: np.ndarray) -> np.ndarray:
        return self.weights @ observation + self.bias

    def get_weights(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of ``(weights, bias)`` — the broadcastable learner state."""
        return self.weights.copy(), self.bias.copy()

    def set_weights(self, weights: Tuple[np.ndarray, np.ndarray]) -> None:
        """Install a ``(weights, bias)`` pair produced by :meth:`get_weights`."""
        _assign_weights(self, weights)

    def probabilities(self, observation: np.ndarray) -> np.ndarray:
        return softmax(self.logits(observation))

    def act(self, observation: np.ndarray, rng: np.random.Generator, greedy: bool = False) -> Tuple[int, float]:
        probs = self.probabilities(observation)
        if greedy:
            action = int(np.argmax(probs))
        else:
            action = int(rng.choice(self.num_actions, p=probs))
        return action, float(np.log(probs[action] + 1e-12))

    def log_prob(self, observation: np.ndarray, action: int) -> float:
        return float(np.log(self.probabilities(observation)[action] + 1e-12))

    def policy_gradient_step(self, observation: np.ndarray, action: int, scale: float) -> None:
        """Apply one ascent step of ``scale * grad log pi(action | observation)``."""
        probs = self.probabilities(observation)
        grad_logits = -probs
        grad_logits[action] += 1.0
        self.weights += self.learning_rate * scale * np.outer(grad_logits, observation)
        self.bias += self.learning_rate * scale * grad_logits

    def entropy(self, observation: np.ndarray) -> float:
        probs = self.probabilities(observation)
        return float(-(probs * np.log(probs + 1e-12)).sum())

    def entropy_gradient_step(self, observation: np.ndarray, scale: float) -> None:
        """Apply one ascent step of ``scale * grad H(pi(. | observation))``.

        This is the correct entropy regularizer for a softmax policy: the
        gradient of the entropy with respect to the logits is
        ``-pi_k * (log pi_k + H)``, which pushes probability mass toward the
        uniform distribution. It is *not* equivalent to adding a constant to
        the advantage of the sampled action, which instead biases the policy
        toward whatever action happened to be taken.
        """
        probs = self.probabilities(observation)
        log_probs = np.log(probs + 1e-12)
        entropy = float(-(probs * log_probs).sum())
        grad_logits = -probs * (log_probs + entropy)
        self.weights += self.learning_rate * scale * np.outer(grad_logits, observation)
        self.bias += self.learning_rate * scale * grad_logits


class LinearValueFunction:
    """A linear state-value (or action-value) function."""

    def __init__(self, obs_dim: int, num_outputs: int = 1, learning_rate: float = 0.01, seed: int = 0):
        rng = np.random.default_rng(seed + 1)
        self.weights = rng.normal(scale=0.01, size=(num_outputs, obs_dim))
        self.bias = np.zeros(num_outputs)
        self.learning_rate = learning_rate

    def __call__(self, observation: np.ndarray) -> np.ndarray:
        return self.weights @ observation + self.bias

    def get_weights(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of ``(weights, bias)`` — the broadcastable learner state."""
        return self.weights.copy(), self.bias.copy()

    def set_weights(self, weights: Tuple[np.ndarray, np.ndarray]) -> None:
        """Install a ``(weights, bias)`` pair produced by :meth:`get_weights`."""
        _assign_weights(self, weights)

    def value(self, observation: np.ndarray) -> float:
        return float(self(observation)[0])

    def update(self, observation: np.ndarray, target, output_index: Optional[int] = None) -> float:
        """One TD/regression step toward ``target``. Returns the error.

        The step is a normalized LMS update (scaled by the squared feature
        norm), which keeps linear TD learning stable regardless of the
        observation dimensionality.
        """
        prediction = self(observation)
        norm = 1.0 + float(observation @ observation)
        index = 0 if output_index is None else output_index
        error = float(np.asarray(target) - prediction[index])
        step = self.learning_rate * error / norm
        self.weights[index] += step * observation
        self.bias[index] += step
        return error
