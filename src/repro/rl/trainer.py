"""Training and evaluation harness for the RL experiments.

Reproduces the setup of Section VII-G/H/I: fixed 45-step episodes, a
constrained 42-pass action space, an Autophase (or InstCount) observation
concatenated with a histogram of the agent's previous actions, code-size
reward, Csmith training programs, and evaluation by geometric-mean code-size
reduction relative to -Oz on held-out benchmarks.
"""

import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.vector import VecCompilerEnv
from repro.core.vector.backends import close_quietly
from repro.core.wrappers import ConcatActionsHistogram, ConstrainedCommandline, TimeLimit
from repro.util.statistics import geometric_mean

logger = logging.getLogger(__name__)

# Floor for a benchmark's code-size reduction in geometric-mean evaluation;
# see evaluate_codesize_reduction().
MIN_CODESIZE_REDUCTION = 1e-6

# The 42-pass subset used by the paper's replication of Autophase (42 of the
# 45 original actions survive in recent LLVM releases).
AUTOPHASE_ACTION_SUBSET = [
    "-adce", "-aggressive-instcombine", "-always-inline", "-constmerge", "-constprop",
    "-correlated-propagation", "-dce", "-deadargelim", "-die", "-dse",
    "-early-cse", "-globaldce", "-globalopt", "-gvn", "-gvn-hoist",
    "-indvars", "-inline", "-instcombine", "-instsimplify", "-ipsccp",
    "-jump-threading", "-lcssa", "-licm", "-loop-deletion", "-loop-idiom",
    "-loop-rotate", "-loop-simplify", "-loop-unroll", "-lowerswitch", "-mem2reg",
    "-memcpyopt", "-mergefunc", "-mergereturn", "-newgvn", "-partial-inliner",
    "-reassociate", "-sccp", "-simplifycfg", "-sink", "-sroa",
    "-strip", "-tailcallelim",
]
EPISODE_LENGTH = 45


@dataclass
class TrainingResult:
    """Learning-curve record of one training run."""

    agent_name: str
    episodes: int
    episode_rewards: List[float] = field(default_factory=list)
    validation_scores: List[float] = field(default_factory=list)
    validation_episodes: List[int] = field(default_factory=list)


@dataclass
class EvaluationResult:
    """Evaluation of a trained agent on one dataset."""

    dataset: str
    geomean_reduction: float
    per_benchmark: List[float] = field(default_factory=list)


def make_rl_environment(
    env,
    observation_space: str = "Autophase",
    use_action_histogram: bool = True,
    episode_length: int = EPISODE_LENGTH,
    action_subset: Optional[Sequence[str]] = None,
):
    """Wrap an LlvmEnv into the experiment's MDP formulation.

    This is the wrapper composition highlighted in the paper: a constrained
    commandline action space, a fixed time limit, and an observation
    concatenated with the action histogram.
    """
    env.observation_space = observation_space
    if env.reward_space is None:
        env.reward_space = "IrInstructionCountNorm"
    env = ConstrainedCommandline(env, flags=list(action_subset or AUTOPHASE_ACTION_SUBSET))
    env = TimeLimit(env, max_episode_steps=episode_length)
    if use_action_histogram:
        env = ConcatActionsHistogram(env, norm_to_episode_len=episode_length)
    return env


@dataclass(frozen=True)
class RlWorkerWrapper:
    """Picklable per-worker wrapper applying the experiment's MDP formulation.

    ``VecCompilerEnv`` applies this to every pool worker. Being a plain
    dataclass (rather than a closure) it can be shipped to the subprocess
    workers of the ``"process"`` backend.
    """

    observation_space: str = "Autophase"
    use_action_histogram: bool = True
    episode_length: int = EPISODE_LENGTH
    action_subset: Optional[Tuple[str, ...]] = None

    def __call__(self, worker):
        return make_rl_environment(
            worker,
            observation_space=self.observation_space,
            use_action_histogram=self.use_action_histogram,
            episode_length=self.episode_length,
            action_subset=list(self.action_subset) if self.action_subset else None,
        )


def make_vec_rl_environment(
    env,
    n: int,
    backend="serial",
    observation_space: str = "Autophase",
    use_action_histogram: bool = True,
    episode_length: int = EPISODE_LENGTH,
    action_subset: Optional[Sequence[str]] = None,
    auto_reset: bool = False,
    close_env_on_error: bool = True,
) -> VecCompilerEnv:
    """Build a vectorized pool of RL-wrapped environments.

    With an in-process backend the raw root environment is forked to populate
    the pool (so service startup and the benchmark cache are shared); with
    ``backend="process"`` each worker is rebuilt in its own subprocess. Every
    worker is then wrapped into the experiment's MDP formulation via
    :class:`RlWorkerWrapper`.

    On success the pool owns ``env``. On failure ``env`` is closed before the
    error propagates (callers construct it solely for the pool); pass
    ``close_env_on_error=False`` to keep it open instead.
    """
    env.observation_space = observation_space
    if env.reward_space is None:
        env.reward_space = "IrInstructionCountNorm"

    wrap = RlWorkerWrapper(
        observation_space=observation_space,
        use_action_histogram=use_action_histogram,
        episode_length=episode_length,
        action_subset=tuple(action_subset) if action_subset else None,
    )
    try:
        return VecCompilerEnv(
            env, n=n, backend=backend, worker_wrapper=wrap, auto_reset=auto_reset
        )
    except Exception:
        if close_env_on_error:
            close_quietly(env)
        raise


def observation_dim(observation_space: str, use_action_histogram: bool, num_actions: int) -> int:
    base = {"Autophase": 56, "InstCount": 70}[observation_space]
    return base + (num_actions if use_action_histogram else 0)


def run_episode(env, agent, benchmark: Optional[str] = None, train: bool = True) -> float:
    """Run one episode; returns the cumulative reward."""
    observation = env.reset(benchmark=benchmark) if benchmark else env.reset()
    total = 0.0
    done = False
    while not done:
        action = agent.act(observation, greedy=not train)
        observation, reward, done, _ = env.step(action)
        reward = reward or 0.0
        total += reward
        if train:
            agent.observe(observation, action, reward, done)
    if train:
        agent.end_episode()
    return total


def run_vec_episode(
    vec_env: VecCompilerEnv,
    agent,
    benchmarks: Optional[Sequence[str]] = None,
    train: bool = True,
) -> List[float]:
    """Collect one episode from every pool worker, returning episode rewards.

    Workers run in lockstep: each iteration the agent selects a batch of
    actions (one per live worker), the pool applies them in one batched step,
    and the agent observes the batch of transitions. Workers whose episodes
    end early are masked out with ``None`` actions. Agents that implement
    ``act_batch``/``observe_batch`` (A2C, PPO) accumulate per-worker
    trajectories and compute advantages over them exactly as in the
    sequential rollout path.
    """
    observations = vec_env.reset(benchmarks=benchmarks)
    n = vec_env.num_envs
    totals = [0.0] * n
    dones = [False] * n
    batched_agent = hasattr(agent, "act_batch")
    if train and not batched_agent and n > 1:
        # Agents without the batch API keep single-slot internal state
        # between act() and observe(); interleaving workers would corrupt it.
        raise ValueError(
            f"{type(agent).__name__} does not implement act_batch()/observe_batch(); "
            "training on a vectorized pool with n > 1 requires the batch rollout API "
            "(use run_episode() for sequential training)"
        )
    batched_agent = batched_agent and train
    while not all(dones):
        masked = [None if dones[i] else observations[i] for i in range(n)]
        if batched_agent:
            actions = agent.act_batch(masked, greedy=not train)
        else:
            actions = [
                None if observation is None else agent.act(observation, greedy=not train)
                for observation in masked
            ]
        observations, rewards, step_dones, _ = vec_env.step(actions)
        rewards = [reward or 0.0 for reward in rewards]
        if batched_agent:
            agent.observe_batch(rewards, step_dones, observations)
        for i in range(n):
            if dones[i]:
                continue
            totals[i] += rewards[i]
            if not batched_agent and train:
                agent.observe(observations[i], actions[i], rewards[i], step_dones[i])
            dones[i] = bool(step_dones[i])
    if train:
        if batched_agent:
            agent.end_episode_batch()
        else:
            agent.end_episode()
    return totals


def run_vec_rollouts(
    vec_env: VecCompilerEnv,
    agent,
    episodes: int,
    benchmarks: Optional[Sequence[str]] = None,
    train: bool = True,
    autoscale: Optional[Callable[[Dict[str, Dict[str, float]], int], Optional[int]]] = None,
    autoscale_interval: int = 8,
) -> List[float]:
    """Continuously collect episodes from an auto-reset pool.

    Unlike :func:`run_vec_episode` — which runs the pool in per-episode
    lockstep and masks finished workers out — this keeps every worker live:
    a worker whose episode ends is reset by the pool *within the same batched
    step* and immediately starts its next episode, so no step-slot is ever
    wasted. The agent bootstraps finished transitions from
    ``info["terminal_observation"]`` (the episode's true final state), not
    from the next episode's initial observation.

    ``benchmarks`` is the full training list: the first ``num_envs`` entries
    seed the workers and every completed episode advances the cycle, so (as
    in the lockstep path) every benchmark gets its turn even when there are
    more benchmarks than workers. Returns the rewards of the completed
    episodes, in completion order (at least ``episodes`` of them).

    ``autoscale`` is an optional policy callable — typically an
    :class:`~repro.core.vector.AutoscalePolicy` — invoked with
    ``(vec_env.connection_stats(), vec_env.num_envs)`` after every
    ``autoscale_interval`` completed episodes. A non-``None`` return value
    drives :meth:`VecCompilerEnv.resize`: shrinking retires the trailing
    workers (their partial episodes are discarded), growing starts fresh
    episodes on the new workers, continuing the benchmark cycle. The agent's
    buffered per-worker trajectories are flushed (``end_episode_batch``)
    before the pool changes shape so per-slot bookkeeping never straddles a
    resize.
    """
    if not getattr(vec_env, "auto_reset", False):
        raise ValueError("run_vec_rollouts() requires a VecCompilerEnv(auto_reset=True)")
    if train and not hasattr(agent, "act_batch"):
        raise ValueError(
            f"{type(agent).__name__} does not implement act_batch()/observe_batch(); "
            "continuous rollout collection requires the batch rollout API"
        )
    if autoscale is not None and autoscale_interval < 1:
        raise ValueError(f"autoscale_interval must be >= 1, got {autoscale_interval}")
    n = vec_env.num_envs
    if isinstance(benchmarks, str):
        benchmarks = [benchmarks]
    benchmarks = list(benchmarks) if benchmarks else []
    if benchmarks:
        current = [benchmarks[i % len(benchmarks)] for i in range(n)]
        observations = vec_env.reset(benchmarks=current)
    else:
        current = [None] * n
        observations = vec_env.reset()
    next_benchmark = n  # Cursor into the benchmark cycle, matching run_vec_episode.
    totals = [0.0] * n
    completed: List[float] = []
    completed_since_autoscale = 0

    def apply_autoscale() -> None:
        nonlocal n, observations, totals, current, next_benchmark
        target = autoscale(vec_env.connection_stats(), vec_env.num_envs)
        if target is None or target == vec_env.num_envs:
            return
        if train and hasattr(agent, "end_episode_batch"):
            # Flush buffered trajectories: per-slot state must not span the
            # resize (slots are about to appear or disappear).
            agent.end_episode_batch()
        vec_env.resize(target)
        old_n, n = n, vec_env.num_envs
        if n < old_n:
            observations = observations[:n]
            totals = totals[:n]
            current = current[:n]
            return
        for index in range(old_n, n):
            assigned = None
            if benchmarks:
                assigned = benchmarks[next_benchmark % len(benchmarks)]
                next_benchmark += 1
            current.append(assigned)
            # New workers are forked from worker 0 mid-run; give each a
            # fresh episode on its assigned benchmark. The fork's replayed
            # state is discarded by this reset — the price of reusing
            # resize()'s one population path — but autoscale fires right
            # after episode completions on an auto-reset pool, so worker 0's
            # replayable history is at most one partial episode.
            observations.append(vec_env.reset_worker(index, benchmark=assigned))
            totals.append(0.0)

    while len(completed) < episodes:
        if train:
            actions = agent.act_batch(observations, greedy=False)
        else:
            actions = [agent.act(observation, greedy=True) for observation in observations]
        observations, rewards, dones, infos = vec_env.step(actions)
        rewards = [reward or 0.0 for reward in rewards]
        if train:
            bootstrap_observations = [
                info.get("terminal_observation", observation) if done else observation
                for observation, done, info in zip(observations, dones, infos)
            ]
            agent.observe_batch(rewards, dones, bootstrap_observations)
        for i in range(n):
            totals[i] += rewards[i]
            if dones[i]:
                completed.append(totals[i])
                totals[i] = 0.0
                if benchmarks:
                    # The auto-reset restarted the worker on its current
                    # benchmark; advance the cycle so every training
                    # benchmark gets its turn, re-resetting only when the
                    # assignment actually changes (the agent has not acted on
                    # the discarded initial observation yet). The discarded
                    # reset is the price of a deterministic benchmark order:
                    # scheduling the next benchmark inside the pool's
                    # auto-reset would assign in backend completion order.
                    assigned = benchmarks[next_benchmark % len(benchmarks)]
                    next_benchmark += 1
                    if assigned != current[i]:
                        current[i] = assigned
                        observations[i] = vec_env.reset_worker(i, benchmark=assigned)
        finished = dones.count(True)
        if finished:
            completed_since_autoscale += finished
            if (
                autoscale is not None
                and completed_since_autoscale >= autoscale_interval
                and len(completed) < episodes
            ):
                completed_since_autoscale = 0
                apply_autoscale()
    if train and hasattr(agent, "end_episode_batch"):
        agent.end_episode_batch()
    return completed


def train_agent_vec(
    agent,
    vec_env: VecCompilerEnv,
    training_benchmarks: Sequence[str],
    episodes: int,
    seed: int = 0,
) -> TrainingResult:
    """Train an agent on vectorized rollouts.

    With a plain pool, episodes are collected ``vec_env.num_envs`` at a time
    in lockstep, cycling over the training benchmarks (one benchmark per
    worker per round), until at least ``episodes`` episodes have been
    recorded. With an ``auto_reset=True`` pool, rollouts are collected
    continuously instead: finished workers restart immediately on their
    assigned benchmark, so no batched step is spent on masked-out slots.
    """
    del seed  # Benchmark order is deterministic, matching train_agent().
    result = TrainingResult(
        agent_name=getattr(agent, "name", type(agent).__name__), episodes=episodes
    )
    benchmarks = list(training_benchmarks)
    n = vec_env.num_envs
    if getattr(vec_env, "auto_reset", False):
        rewards = run_vec_rollouts(vec_env, agent, episodes, benchmarks=benchmarks, train=True)
        result.episode_rewards.extend(rewards[:episodes])
        return result
    episode = 0
    while episode < episodes:
        if benchmarks:
            assigned = [benchmarks[(episode + i) % len(benchmarks)] for i in range(n)]
        else:
            assigned = None
        rewards = run_vec_episode(vec_env, agent, benchmarks=assigned, train=True)
        remaining = episodes - episode
        result.episode_rewards.extend(rewards[:remaining])
        episode += min(n, remaining)
    return result


def final_codesize_reduction(env) -> float:
    """The paper's headline metric: -Oz size divided by the achieved size."""
    unwrapped = env.unwrapped if hasattr(env, "unwrapped") else env
    final_size = unwrapped.observation["IrInstructionCount"]
    oz_size = unwrapped.observation["IrInstructionCountOz"]
    if final_size <= 0:
        return 0.0
    return float(oz_size) / float(final_size)


def train_agent(
    agent,
    env,
    training_benchmarks: Sequence[str],
    episodes: int,
    validation_benchmarks: Optional[Sequence[str]] = None,
    validation_interval: Optional[int] = None,
    seed: int = 0,
) -> TrainingResult:
    """Train an agent by cycling over the training benchmarks."""
    rng = random.Random(seed)  # noqa: F841 - reserved for future stochastic curricula
    result = TrainingResult(agent_name=getattr(agent, "name", type(agent).__name__), episodes=episodes)
    benchmarks = list(training_benchmarks)
    for episode in range(episodes):
        benchmark = benchmarks[episode % len(benchmarks)] if benchmarks else None
        reward = run_episode(env, agent, benchmark=benchmark, train=True)
        result.episode_rewards.append(reward)
        if (
            validation_benchmarks
            and validation_interval
            and (episode + 1) % validation_interval == 0
        ):
            score = evaluate_codesize_reduction(agent, env, validation_benchmarks).geomean_reduction
            result.validation_scores.append(score)
            result.validation_episodes.append(episode + 1)
    return result


def evaluate_codesize_reduction(
    agent,
    env,
    benchmarks: Iterable[str],
    dataset_name: str = "",
) -> EvaluationResult:
    """Evaluate a trained agent: greedy rollouts, geomean reduction vs -Oz.

    A benchmark that degenerates to a non-positive final code size is
    clamped to :data:`MIN_CODESIZE_REDUCTION` (and logged) rather than
    contributing a 0.0 reduction, which would zero the entire geometric
    mean no matter how the other benchmarks fared.
    """
    reductions = []
    for benchmark in benchmarks:
        run_episode(env, agent, benchmark=benchmark, train=False)
        reduction = final_codesize_reduction(env)
        if reduction <= 0.0:
            logger.warning(
                "Benchmark %s reported a non-positive final code size; "
                "clamping its reduction to %g instead of zeroing the geomean",
                benchmark,
                MIN_CODESIZE_REDUCTION,
            )
            reduction = MIN_CODESIZE_REDUCTION
        reductions.append(reduction)
    return EvaluationResult(
        dataset=dataset_name,
        geomean_reduction=geometric_mean(reductions),
        per_benchmark=reductions,
    )
