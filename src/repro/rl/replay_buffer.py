"""Prioritized experience replay (the Ape-X ingredient)."""

from typing import List, Tuple

import numpy as np


class PrioritizedReplayBuffer:
    """A proportional prioritized replay buffer.

    Transitions are sampled with probability proportional to their priority
    (the TD error magnitude), with importance-sampling weights to correct the
    induced bias — the core mechanism of Ape-X / prioritized DQN.
    """

    def __init__(self, capacity: int = 10_000, alpha: float = 0.6, beta: float = 0.4, seed: int = 0):
        self.capacity = capacity
        self.alpha = alpha
        self.beta = beta
        self.rng = np.random.default_rng(seed)
        self.buffer: List[Tuple] = []
        self.priorities = np.zeros(capacity, dtype=np.float64)
        self.position = 0
        self._max_priority = 1.0

    def __len__(self) -> int:
        return len(self.buffer)

    @property
    def max_priority(self) -> float:
        """The largest priority ever stored (O(1), never recomputed).

        New transitions are conventionally added at this priority so they are
        replayed at least once. A running maximum (rather than a scan of the
        live slots) keeps ``add`` O(1) and is insensitive to the slot about
        to be overwritten.
        """
        return self._max_priority

    def add(self, transition: Tuple, priority: float = 1.0) -> None:
        priority = max(1e-6, float(priority))
        if len(self.buffer) < self.capacity:
            self.buffer.append(transition)
        else:
            self.buffer[self.position] = transition
        self.priorities[self.position] = priority
        self._max_priority = max(self._max_priority, priority)
        self.position = (self.position + 1) % self.capacity

    def sample(self, batch_size: int) -> Tuple[List[Tuple], np.ndarray, np.ndarray]:
        """Sample a batch. Returns (transitions, indices, importance weights)."""
        size = len(self.buffer)
        if size == 0:
            return [], np.array([], dtype=int), np.array([])
        priorities = self.priorities[:size] ** self.alpha
        probabilities = priorities / priorities.sum()
        indices = self.rng.choice(size, size=min(batch_size, size), p=probabilities)
        weights = (size * probabilities[indices]) ** (-self.beta)
        weights = weights / weights.max()
        return [self.buffer[i] for i in indices], indices, weights

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        for index, priority in zip(indices, priorities):
            priority = max(1e-6, float(priority))
            self.priorities[int(index)] = priority
            self._max_priority = max(self._max_priority, priority)
