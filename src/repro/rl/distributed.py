"""Distributed actor/learner training: the real Ape-X / IMPALA topology.

The paper trains its RL agents on RLlib's distributed runtimes: Ape-X runs a
fleet of epsilon-greedy actors feeding one central prioritized replay, IMPALA
runs actors with stale behaviour policies whose trajectories the learner
corrects with V-trace importance ratios. The single-process harness
(:func:`repro.rl.trainer.train_agent_vec`) collapses both roles into one
agent; this module splits them back apart:

* **Actors** are subprocesses. Each one builds its own auto-reset
  :class:`~repro.core.vector.VecCompilerEnv` pool of RL-wrapped environments
  and drives it with a *local copy* of the policy through the exact rollout
  loop of the single-process path (:func:`repro.rl.trainer.run_vec_rollouts`).
  Experience — Ape-X transition tuples, IMPALA trajectories with behaviour
  log-probs — is shipped to the learner over a ``multiprocessing`` queue via
  the agents' ``collect_batch``/``collect_flush`` protocol.
* **The learner** runs in the calling process. It owns the learning state
  (the prioritized replay buffer and Q/target networks for Ape-X; the policy,
  value function, and V-trace machinery for IMPALA), consumes the experience
  queue through ``learn_items``, and periodically broadcasts refreshed
  ``get_weights()`` snapshots back to every actor's weight queue.

With one actor the trainer defaults to a *synchronous* barrier — the actor
blocks after each shipped batch until the learner replies with (possibly
updated) weights — which makes distributed training bit-for-bit equivalent to
``train_agent_vec`` on the same seeds: the actor's acting RNG, feature scaler
and epsilon schedule consume exactly the single-process sequence, and the
learner's replay/update sequence is replayed in the same order. With several
actors the topology runs asynchronously: actors act on stale weights between
broadcasts, which is precisely the staleness IMPALA's importance ratios (and
Ape-X's off-policy replay) are built to absorb.

:class:`DistributedTrainer` keeps the :class:`~repro.rl.trainer.TrainingResult`
contract of ``train_agent_vec``, so evaluation and plotting code downstream
of either path is identical.
"""

import logging
import multiprocessing
import os
import pickle
import queue as queue_module
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.rl.a2c import A2CAgent
from repro.rl.apex import ApexDQNAgent
from repro.rl.impala import ImpalaAgent
from repro.rl.policies import FeatureScaler
from repro.rl.ppo import PPOAgent
from repro.rl.trainer import (
    AUTOPHASE_ACTION_SUBSET,
    EPISODE_LENGTH,
    TrainingResult,
    make_vec_rl_environment,
    observation_dim,
    run_vec_rollouts,
)

logger = logging.getLogger(__name__)

AGENT_TYPES = {
    "a2c": A2CAgent,
    "apex": ApexDQNAgent,
    "impala": ImpalaAgent,
    "ppo": PPOAgent,
}

# Seed stride between actors: every actor explores with its own RNG stream
# while actor 0 keeps the caller's seed (the single-process equivalence
# anchor).
_ACTOR_SEED_STRIDE = 9973

# Learner checkpoint file name inside --checkpoint-dir, and its format tag.
CHECKPOINT_FILENAME = "learner.ckpt"
_CHECKPOINT_VERSION = 1


def checkpoint_path(checkpoint_dir: str) -> str:
    return os.path.join(checkpoint_dir, CHECKPOINT_FILENAME)


def save_learner_checkpoint(checkpoint_dir: str, state: Dict[str, Any]) -> str:
    """Atomically persist a learner checkpoint (write temp + rename).

    A kill mid-write leaves either the previous checkpoint or the new one —
    never a torn file — which is the whole point of checkpointing against
    crashes.
    """
    os.makedirs(checkpoint_dir, exist_ok=True)
    path = checkpoint_path(checkpoint_dir)
    fd, tmp = tempfile.mkstemp(dir=checkpoint_dir, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(state, f)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_learner_checkpoint(checkpoint_dir: str) -> Optional[Dict[str, Any]]:
    """Load the learner checkpoint from ``checkpoint_dir``, or None."""
    path = checkpoint_path(checkpoint_dir)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as f:
        state = pickle.load(f)
    version = state.get("version")
    if version != _CHECKPOINT_VERSION:
        raise ValueError(
            f"Unsupported learner checkpoint version {version!r} at {path} "
            f"(this build writes version {_CHECKPOINT_VERSION})"
        )
    return state


def _build_agent(agent_name: str, agent_kwargs: Dict[str, Any]):
    try:
        agent_type = AGENT_TYPES[agent_name]
    except KeyError:
        raise ValueError(
            f"Unknown agent {agent_name!r}; expected one of {sorted(AGENT_TYPES)}"
        ) from None
    agent = agent_type(**agent_kwargs)
    for method in ("collect_batch", "collect_flush", "learn_items", "get_weights", "set_weights"):
        if not hasattr(agent, method):
            raise ValueError(
                f"{type(agent).__name__} does not implement the distributed "
                f"actor/learner protocol ({method}); distributed training "
                "supports the off-policy agents ('apex', 'impala') — use "
                "train_agent_vec() for A2C/PPO"
            )
    return agent


@dataclass(frozen=True)
class ActorSpec:
    """A picklable recipe for one actor process.

    Mirrors :class:`repro.core.vector.process.WorkerSpec` one level up: the
    actor rebuilds its agent and its vectorized environment pool from plain
    data, so specs survive both the ``fork`` and ``spawn`` start methods.
    """

    actor_id: int
    agent_name: str
    agent_kwargs: Dict[str, Any]
    env_id: str
    make_kwargs: Dict[str, Any]
    envs_per_actor: int
    env_backend: str
    observation_space: str
    use_action_histogram: bool
    episode_length: int
    action_subset: Optional[Tuple[str, ...]]
    benchmarks: Tuple[str, ...]
    episodes: int
    synchronous: bool
    timeout: float


class _ActorAgent:
    """The rollout-facing face of an actor: acts locally, ships experience.

    Implements the ``act_batch``/``observe_batch``/``end_episode_batch``
    surface that :func:`run_vec_rollouts` drives, so the actor's data
    collection is *literally* the single-process rollout loop — benchmark
    cycling, auto-reset bootstrapping and completion accounting included.
    Acting delegates to the wrapped agent; observations are converted into
    experience items (``collect_batch``) and shipped instead of learned
    from; broadcast weights are installed before each acting step.
    """

    def __init__(self, agent, spec: ActorSpec, experience_queue, weight_queue):
        self.agent = agent
        self.spec = spec
        self._experience = experience_queue
        self._weights = weight_queue
        self.steps = 0
        self.weight_updates = 0

    def _apply_weights(self, weights: Optional[Dict[str, Any]]) -> None:
        if weights is not None:
            self.agent.set_weights(weights)
            self.weight_updates += 1

    def _drain_weights(self) -> None:
        """Install the freshest broadcast waiting on the weight queue, if any."""
        latest = None
        while True:
            try:
                latest = self._weights.get_nowait()
            except queue_module.Empty:
                break
        self._apply_weights(latest)

    def _ship(self, items: List[Any]) -> None:
        self._experience.put(("experience", self.spec.actor_id, items))
        if self.spec.synchronous:
            # Barrier mode: wait for the learner to consume this batch and
            # reply with (possibly unchanged) weights before acting again —
            # the lockstep that makes one-actor runs replay the
            # single-process learning sequence exactly.
            try:
                reply = self._weights.get(timeout=self.spec.timeout)
            except queue_module.Empty:
                raise RuntimeError(
                    f"Actor {self.spec.actor_id}: no learner reply within "
                    f"{self.spec.timeout}s (learner died or stalled)"
                ) from None
            self._apply_weights(reply)

    # -- the rollout API run_vec_rollouts() drives --------------------------

    def act_batch(self, observations: Sequence, greedy: bool = False) -> List[Optional[int]]:
        if not self.spec.synchronous:
            self._drain_weights()
        return self.agent.act_batch(observations, greedy=greedy)

    def observe_batch(self, rewards, dones, observations=None) -> None:
        self.steps += len(rewards)
        items = self.agent.collect_batch(rewards, dones, observations)
        if items:
            self._ship(items)

    def end_episode_batch(self) -> None:
        items = self.agent.collect_flush()
        if items:
            self._ship(items)


def _actor_main(spec: ActorSpec, experience_queue, weight_queue) -> None:
    """Actor subprocess entry point: build pool + agent, collect, report."""
    try:
        import repro

        agent = _build_agent(spec.agent_name, dict(spec.agent_kwargs))
        env = repro.make(spec.env_id, **spec.make_kwargs)
        # make_vec_rl_environment closes env for us if pool construction fails.
        vec = make_vec_rl_environment(
            env,
            n=spec.envs_per_actor,
            backend=spec.env_backend,
            observation_space=spec.observation_space,
            use_action_histogram=spec.use_action_histogram,
            episode_length=spec.episode_length,
            action_subset=list(spec.action_subset) if spec.action_subset else None,
            auto_reset=True,
        )
        actor = _ActorAgent(agent, spec, experience_queue, weight_queue)
        try:
            rewards = run_vec_rollouts(
                vec, actor, spec.episodes, benchmarks=list(spec.benchmarks), train=True
            )
        finally:
            vec.close()
        scaler = getattr(agent, "scaler", None)
        experience_queue.put(
            (
                "done",
                spec.actor_id,
                {
                    "rewards": rewards,
                    "steps": actor.steps,
                    "weight_updates": actor.weight_updates,
                    # Actors standardize observations with an online
                    # FeatureScaler and ship pre-scaled features; the learner
                    # needs the statistics to act on raw observations later
                    # (greedy evaluation of the trained learner).
                    "scaler": scaler.get_state() if scaler is not None else None,
                },
            )
        )
    except BaseException as error:  # noqa: BLE001 - reported to the learner
        try:
            experience_queue.put(
                (
                    "error",
                    spec.actor_id,
                    f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
                )
            )
        except Exception:  # noqa: BLE001 - the learner is already gone
            pass


@dataclass
class DistributedTrainer:
    """Multi-process actor/learner training over vectorized environment pools.

    The learner runs in the calling process; ``num_actors`` subprocesses each
    drive an ``envs_per_actor``-worker auto-reset pool. Construction is by
    recipe (environment ID + kwargs, agent name + kwargs) because every actor
    rebuilds both from scratch in its own process.

    Args:
        agent: ``"apex"`` or ``"impala"`` (the off-policy agents whose
            algorithms define this topology). A2C/PPO are rejected.
        agent_kwargs: Constructor kwargs for the agent. ``obs_dim``,
            ``num_actions`` and ``seed`` are filled in from the environment
            configuration and ``seed`` when absent.
        env_id: ``repro.make`` environment ID for the actors' pools.
        make_kwargs: ``repro.make`` kwargs (benchmark, reward space, ...);
            must be picklable.
        num_actors: Number of actor subprocesses.
        envs_per_actor: Pool size inside each actor.
        env_backend: Execution backend of each actor's pool (``"serial"``,
            ``"thread"``, or ``"process"``).
        service_url: Attach every actor's environments to a running compiler
            service daemon (``repro serve``) at this URL instead of hosting a
            compiler service inside each actor. The daemon multiplexes all
            actors' sessions over one shared runtime (and benchmark cache) and
            may live on another machine — the paper's scale-out topology.
        broadcast_interval: Asynchronous mode only — minimum number of
            experience items the learner consumes between weight broadcasts.
        synchronous: Barrier mode (actor blocks for a learner reply after
            every shipped batch). Defaults to ``num_actors == 1``, which is
            what makes one-actor runs seed-for-seed equivalent to
            :func:`~repro.rl.trainer.train_agent_vec`.
        seed: Learner seed; actor ``i`` uses ``seed + i * 9973``.
        start_method: ``multiprocessing`` start method (default: ``fork``
            where available, else ``spawn``).
        timeout: Seconds either side waits on its queue before declaring the
            other side dead.
        checkpoint_dir: Directory for periodic learner checkpoints (weights,
            FeatureScaler statistics, replay-buffer priority seed, episode
            accounting). ``None`` disables checkpointing.
        checkpoint_interval: Learn items consumed between periodic
            checkpoints (a final checkpoint is always written when a
            checkpointed run completes).
        resume: Warm-start from the checkpoint in ``checkpoint_dir``:
            the learner's weights and scaler are restored and
            :meth:`train`'s ``episodes`` is treated as the *total* target —
            only the episodes beyond the checkpoint's count are run, and the
            returned reward trajectory concatenates saved + new episodes to
            exactly ``episodes`` entries (the crash-resume contract).
    """

    agent: str = "apex"
    agent_kwargs: Dict[str, Any] = field(default_factory=dict)
    env_id: str = "llvm-v0"
    make_kwargs: Dict[str, Any] = field(default_factory=dict)
    num_actors: int = 1
    envs_per_actor: int = 1
    env_backend: str = "serial"
    service_url: Optional[str] = None
    observation_space: str = "Autophase"
    use_action_histogram: bool = True
    episode_length: int = EPISODE_LENGTH
    action_subset: Optional[Sequence[str]] = None
    broadcast_interval: int = 8
    synchronous: Optional[bool] = None
    seed: int = 0
    start_method: Optional[str] = None
    timeout: float = 300.0
    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 512
    resume: bool = False

    def __post_init__(self):
        if self.num_actors < 1:
            raise ValueError(f"DistributedTrainer requires num_actors >= 1, got {self.num_actors}")
        if self.envs_per_actor < 1:
            raise ValueError(
                f"DistributedTrainer requires envs_per_actor >= 1, got {self.envs_per_actor}"
            )
        if self.service_url:
            self.make_kwargs = dict(self.make_kwargs)
            self.make_kwargs.setdefault("service_url", self.service_url)
        actions = self.action_subset or AUTOPHASE_ACTION_SUBSET
        self.agent_kwargs = dict(self.agent_kwargs)
        self.agent_kwargs.setdefault(
            "obs_dim",
            observation_dim(self.observation_space, self.use_action_histogram, len(actions)),
        )
        self.agent_kwargs.setdefault("num_actions", len(actions))
        self.agent_kwargs.setdefault("seed", self.seed)
        # Validates the agent name and its distributed protocol support up
        # front (rather than inside N subprocesses), and becomes the learner.
        self.learner = _build_agent(self.agent, self.agent_kwargs)
        self.stats: Dict[str, Any] = {}
        # Episode accounting carried over from a resumed checkpoint: the
        # rewards already earned before the crash, and the learn-item count.
        self._resume_rewards: List[float] = []
        self._resume_items = 0
        if self.resume:
            if not self.checkpoint_dir:
                raise ValueError("resume=True requires checkpoint_dir")
            state = load_learner_checkpoint(self.checkpoint_dir)
            if state is not None:
                self._apply_checkpoint(state)

    # -- checkpointing -------------------------------------------------------

    def _apply_checkpoint(self, state: Dict[str, Any]) -> None:
        if state.get("agent") != self.agent:
            raise ValueError(
                f"Checkpoint in {self.checkpoint_dir} was written by agent "
                f"{state.get('agent')!r}, not {self.agent!r}"
            )
        self.learner.set_weights(state["weights"])
        scaler = getattr(self.learner, "scaler", None)
        if scaler is not None and state.get("scaler") is not None:
            scaler.set_state(state["scaler"])
        # The replay buffer's *contents* die with the process (they are
        # regenerated by fresh experience) but its priority scale survives:
        # restoring max_priority keeps new experience sampled with the same
        # initial priority it would have had in the uninterrupted run.
        replay = getattr(self.learner, "replay", None)
        if replay is not None and state.get("replay_max_priority") is not None:
            replay._max_priority = state["replay_max_priority"]
        self._resume_rewards = list(state.get("episode_rewards", []))
        self._resume_items = int(state.get("items_learned", 0))
        logger.info(
            "Resumed %s learner from %s: %d episode(s), %d learn item(s)",
            self.agent, self.checkpoint_dir, len(self._resume_rewards),
            self._resume_items,
        )

    def _checkpoint_state(
        self, episode_rewards: List[float], items_learned: int
    ) -> Dict[str, Any]:
        scaler = getattr(self.learner, "scaler", None)
        replay = getattr(self.learner, "replay", None)
        return {
            "version": _CHECKPOINT_VERSION,
            "agent": self.agent,
            "seed": self.seed,
            "weights": self.learner.get_weights(),
            "scaler": scaler.get_state() if scaler is not None else None,
            "replay_max_priority": getattr(replay, "_max_priority", None),
            "episodes_done": len(episode_rewards),
            "episode_rewards": list(episode_rewards),
            "items_learned": items_learned,
        }

    def _write_checkpoint(self, episode_rewards: List[float], items_learned: int) -> None:
        if not self.checkpoint_dir:
            return
        try:
            save_learner_checkpoint(
                self.checkpoint_dir,
                self._checkpoint_state(episode_rewards, items_learned),
            )
        except Exception:  # noqa: BLE001 - checkpointing must not kill training
            logger.warning(
                "Failed to write learner checkpoint to %s", self.checkpoint_dir,
                exc_info=True,
            )

    # -- topology ------------------------------------------------------------

    def _actor_specs(self, benchmarks: Sequence[str], episodes: int, synchronous: bool):
        """One spec per actor, splitting the episode budget evenly.

        Actors beyond the episode count get a zero quota and are not spawned.
        """
        num_actors = min(self.num_actors, max(1, episodes))
        quotas = [
            episodes // num_actors + (1 if i < episodes % num_actors else 0)
            for i in range(num_actors)
        ]
        specs = []
        for actor_id, quota in enumerate(quotas):
            if quota <= 0:
                continue
            agent_kwargs = dict(self.agent_kwargs)
            agent_kwargs["seed"] = self.seed + actor_id * _ACTOR_SEED_STRIDE
            specs.append(
                ActorSpec(
                    actor_id=actor_id,
                    agent_name=self.agent,
                    agent_kwargs=agent_kwargs,
                    env_id=self.env_id,
                    make_kwargs=dict(self.make_kwargs),
                    envs_per_actor=self.envs_per_actor,
                    env_backend=self.env_backend,
                    observation_space=self.observation_space,
                    use_action_histogram=self.use_action_histogram,
                    episode_length=self.episode_length,
                    action_subset=tuple(self.action_subset) if self.action_subset else None,
                    benchmarks=tuple(benchmarks),
                    episodes=quota,
                    synchronous=synchronous,
                    timeout=self.timeout,
                )
            )
        return specs

    def train(self, training_benchmarks: Sequence[str], episodes: int) -> TrainingResult:
        """Run the actor fleet to ``episodes`` completed episodes total.

        Returns the same :class:`TrainingResult` as
        :func:`~repro.rl.trainer.train_agent_vec`; per-actor reward streams
        are concatenated in actor order and trimmed to ``episodes``. The
        trained learner remains available as ``self.learner`` (e.g. for
        :func:`~repro.rl.trainer.evaluate_codesize_reduction`), and run
        accounting lands in ``self.stats``.
        """
        if isinstance(training_benchmarks, str):
            training_benchmarks = [training_benchmarks]
        benchmarks = [str(benchmark) for benchmark in training_benchmarks]
        # Resume accounting: episodes is the TOTAL target; a resumed trainer
        # runs only the episodes beyond its checkpoint and prepends the saved
        # reward stream, so crash + resume reaches the same trajectory
        # length as the uninterrupted run.
        remaining = episodes - len(self._resume_rewards)
        if remaining <= 0:
            result = TrainingResult(
                agent_name=getattr(self.learner, "name", type(self.learner).__name__),
                episodes=episodes,
            )
            result.episode_rewards = list(self._resume_rewards[:episodes])
            self.stats = {"resumed_episodes": len(result.episode_rewards), "actors": 0}
            return result
        synchronous = self.synchronous if self.synchronous is not None else self.num_actors == 1
        specs = self._actor_specs(benchmarks, remaining, synchronous)

        if self.start_method is not None:
            start_method = self.start_method
        else:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        experience_queue = ctx.Queue()
        weight_queues = {spec.actor_id: ctx.Queue() for spec in specs}
        processes = {
            spec.actor_id: ctx.Process(
                target=_actor_main,
                args=(spec, experience_queue, weight_queues[spec.actor_id]),
                daemon=True,
                name=f"rl-actor-{spec.actor_id}",
            )
            for spec in specs
        }

        learner = self.learner
        start = time.monotonic()
        items_learned = 0
        items_since_broadcast = 0
        broadcasts = 0
        pending_weights: Optional[Dict[str, Any]] = None
        actor_reports: Dict[int, Dict[str, Any]] = {}
        active = set(processes)
        try:
            for process in processes.values():
                process.start()
            while active:
                try:
                    kind, actor_id, payload = experience_queue.get(timeout=self.timeout)
                except queue_module.Empty:
                    dead = sorted(
                        pid for pid in active if not processes[pid].is_alive()
                    )
                    raise RuntimeError(
                        f"Learner: no actor message within {self.timeout}s "
                        f"(active actors: {sorted(active)}, dead: {dead})"
                    ) from None
                if kind == "experience":
                    weights = learner.learn_items(payload)
                    items_learned += len(payload)
                    if (
                        self.checkpoint_dir
                        and items_learned // self.checkpoint_interval
                        > (items_learned - len(payload)) // self.checkpoint_interval
                    ):
                        # Periodic mid-run checkpoint: the weights/scaler are
                        # current; episode accounting is the pre-crash state
                        # (this run's episodes only land in the final write).
                        self._write_checkpoint(
                            self._resume_rewards,
                            self._resume_items + items_learned,
                        )
                    if synchronous:
                        # Reply to the shipping actor only: None means "keep
                        # your current weights" (exactly what a
                        # single-process agent's behaviour policy does
                        # between sync boundaries).
                        weight_queues[actor_id].put(weights)
                    else:
                        if weights is not None:
                            pending_weights = weights
                        items_since_broadcast += len(payload)
                        if (
                            pending_weights is not None
                            and items_since_broadcast >= self.broadcast_interval
                        ):
                            for pid in active:
                                weight_queues[pid].put(pending_weights)
                            broadcasts += 1
                            pending_weights = None
                            items_since_broadcast = 0
                elif kind == "done":
                    actor_reports[actor_id] = payload
                    active.discard(actor_id)
                elif kind == "error":
                    raise RuntimeError(f"Actor {actor_id} failed:\n{payload}")
                else:
                    raise RuntimeError(f"Unknown actor message kind: {kind!r}")
            for process in processes.values():
                process.join(timeout=self.timeout)
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
            # Unconsumed broadcasts must not block interpreter shutdown on
            # the queues' feeder threads.
            for weight_queue in weight_queues.values():
                weight_queue.cancel_join_thread()
            experience_queue.cancel_join_thread()

        result = TrainingResult(
            agent_name=getattr(learner, "name", type(learner).__name__), episodes=episodes
        )
        result.episode_rewards.extend(self._resume_rewards)
        for spec in specs:
            report = actor_reports.get(spec.actor_id, {})
            result.episode_rewards.extend(report.get("rewards", [])[: spec.episodes])
        result.episode_rewards = result.episode_rewards[:episodes]
        # The learner's weights were fit to actor-standardized features;
        # adopt the actors' (merged) scaler statistics so the trained
        # learner evaluates raw observations with the transform it was
        # trained under.
        scaler_states = [
            actor_reports[spec.actor_id]["scaler"]
            for spec in specs
            if actor_reports.get(spec.actor_id, {}).get("scaler") is not None
        ]
        learner_scaler = getattr(learner, "scaler", None)
        if scaler_states and learner_scaler is not None:
            learner_scaler.set_state(FeatureScaler.merge_states(scaler_states))
        self._write_checkpoint(
            result.episode_rewards, self._resume_items + items_learned
        )
        self.stats = {
            "actors": len(specs),
            "envs_per_actor": self.envs_per_actor,
            "synchronous": synchronous,
            "items_learned": items_learned,
            "resumed_episodes": len(self._resume_rewards),
            "checkpoint_dir": self.checkpoint_dir,
            "broadcasts": broadcasts,
            "total_env_steps": sum(r.get("steps", 0) for r in actor_reports.values()),
            "actor_steps": {pid: r.get("steps", 0) for pid, r in actor_reports.items()},
            "actor_weight_updates": {
                pid: r.get("weight_updates", 0) for pid, r in actor_reports.items()
            },
            "walltime_s": time.monotonic() - start,
        }
        logger.info(
            "Distributed %s training: %d episodes from %d actor(s), %d env steps, "
            "%d learn items, %d broadcast(s) in %.2fs",
            self.agent,
            len(result.episode_rewards),
            len(specs),
            self.stats["total_env_steps"],
            items_learned,
            broadcasts if not synchronous else sum(
                self.stats["actor_weight_updates"].values()
            ),
            self.stats["walltime_s"],
        )
        return result


def train_agent_distributed(
    agent: str,
    training_benchmarks: Sequence[str],
    episodes: int,
    num_actors: int = 2,
    **trainer_kwargs,
) -> TrainingResult:
    """One-call convenience wrapper around :class:`DistributedTrainer`."""
    trainer = DistributedTrainer(agent=agent, num_actors=num_actors, **trainer_kwargs)
    return trainer.train(training_benchmarks, episodes)
