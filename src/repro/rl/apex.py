"""Ape-X style DQN: Q-learning with prioritized experience replay.

The learning machinery — epsilon-greedy exploration, a prioritized replay
buffer with importance-sampling corrections, a periodically synced target
network, and n-step returns (n=1 here) — follows the original Ape-X. A
single agent instance plays both roles in the single-process harness;
:mod:`repro.rl.distributed` splits the roles across processes via the
actor/learner protocol (:meth:`ApexDQNAgent.collect_batch` on actors,
:meth:`ApexDQNAgent.learn_items` on the learner, weights flowing back
through :meth:`get_weights`/:meth:`set_weights`), restoring the paper
agents' real topology: an actor fleet feeding one central replay.
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.policies import FeatureScaler, LinearValueFunction
from repro.rl.replay_buffer import PrioritizedReplayBuffer


class ApexDQNAgent:
    """Prioritized-replay DQN with linear Q functions."""

    name = "apex"

    def __init__(
        self,
        obs_dim: int,
        num_actions: int,
        learning_rate: float = 0.01,
        gamma: float = 0.99,
        epsilon_start: float = 1.0,
        epsilon_end: float = 0.05,
        epsilon_decay_steps: int = 5_000,
        batch_size: int = 32,
        target_sync_interval: int = 250,
        seed: int = 0,
    ):
        self.q = LinearValueFunction(obs_dim, num_actions, learning_rate, seed)
        self.target_q = LinearValueFunction(obs_dim, num_actions, learning_rate, seed)
        self._sync_target()
        self.scaler = FeatureScaler(obs_dim)
        self.replay = PrioritizedReplayBuffer(seed=seed)
        self.num_actions = num_actions
        self.gamma = gamma
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self.epsilon_decay_steps = epsilon_decay_steps
        self.batch_size = batch_size
        self.target_sync_interval = target_sync_interval
        self.rng = np.random.default_rng(seed)
        self.total_steps = 0
        self._last_features: Optional[np.ndarray] = None
        # Per-worker state for vectorized rollouts (see act_batch/observe_batch).
        self._last_batch: List[Optional[tuple]] = []

    def _sync_target(self) -> None:
        self.target_q.weights = self.q.weights.copy()
        self.target_q.bias = self.q.bias.copy()

    @property
    def epsilon(self) -> float:
        fraction = min(1.0, self.total_steps / self.epsilon_decay_steps)
        return self.epsilon_start + fraction * (self.epsilon_end - self.epsilon_start)

    def _select_action(self, features: np.ndarray, greedy: bool) -> int:
        if not greedy and self.rng.random() < self.epsilon:
            return int(self.rng.integers(self.num_actions))
        return int(np.argmax(self.q(features)))

    def act(self, observation, greedy: bool = False) -> int:
        features = self.scaler(observation, update=not greedy)
        self._last_features = features
        return self._select_action(features, greedy)

    def _store(
        self, features: np.ndarray, action: int, reward: float, next_features: np.ndarray, done: bool
    ) -> None:
        transition = (features, action, float(reward), next_features, bool(done))
        # New transitions get maximum priority so they are replayed at least once.
        self.replay.add(transition, priority=self.replay.max_priority)
        self.total_steps += 1
        self._learn()
        if self.total_steps % self.target_sync_interval == 0:
            self._sync_target()

    def observe(self, observation, action: int, reward: float, done: bool) -> None:
        next_features = self.scaler(observation, update=False)
        self._store(self._last_features, action, reward, next_features, done)

    def end_episode(self) -> None:
        """DQN learns online from the replay buffer; nothing to flush."""

    # -- vectorized rollout API -------------------------------------------

    def act_batch(self, observations: Sequence, greedy: bool = False) -> List[Optional[int]]:
        """Select one epsilon-greedy action per rollout worker.

        A ``None`` observation marks a worker whose episode has already
        finished; its slot returns ``None`` and is skipped by
        :meth:`observe_batch`.
        """
        batch: List[Optional[tuple]] = []
        actions: List[Optional[int]] = []
        for observation in observations:
            if observation is None:
                batch.append(None)
                actions.append(None)
                continue
            features = self.scaler(observation, update=not greedy)
            action = self._select_action(features, greedy)
            batch.append((features, action))
            actions.append(action)
        self._last_batch = batch
        return actions

    def _assemble_transitions(
        self,
        rewards: Sequence[Optional[float]],
        dones: Sequence[bool],
        observations: Optional[Sequence],
    ) -> List[Tuple]:
        """Build the transition tuples of the preceding :meth:`act_batch`.

        ``observations`` carries the post-step observation of each worker —
        the bootstrap state s' of the stored transition — and is therefore
        *required* (unlike for the on-policy agents, which ignore it).
        """
        if observations is None:
            raise ValueError(
                f"{type(self).__name__} requires the post-step observation "
                "batch to bootstrap its TD targets; without it every target "
                "would silently bootstrap from the pre-step state"
            )
        items: List[Tuple] = []
        for last, reward, done, observation in zip(
            self._last_batch, rewards, dones, observations
        ):
            if last is None:
                continue
            features, action = last
            next_features = (
                features if observation is None else self.scaler(observation, update=False)
            )
            items.append((features, action, float(reward or 0.0), next_features, bool(done)))
        self._last_batch = []
        return items

    def observe_batch(
        self,
        rewards: Sequence[Optional[float]],
        dones: Sequence[bool],
        observations: Optional[Sequence] = None,
    ) -> None:
        """Store one transition per worker from the preceding :meth:`act_batch`.

        All workers share the one prioritized replay buffer and learner, the
        single-process analogue of Ape-X's actor fleet feeding a central
        replay.
        """
        for features, action, reward, next_features, done in self._assemble_transitions(
            rewards, dones, observations
        ):
            self._store(features, action, reward, next_features, done)

    def end_episode_batch(self) -> None:
        """DQN learns online from the replay buffer; nothing to flush."""
        self._last_batch = []

    # -- distributed actor/learner protocol --------------------------------

    def get_weights(self) -> Dict[str, Any]:
        """The acting-relevant parameters: the online Q network.

        The target network and replay buffer are learner-only state and are
        never shipped to actors.
        """
        return {"q": self.q.get_weights()}

    def set_weights(self, weights: Dict[str, Any]) -> None:
        self.q.set_weights(weights["q"])

    def collect_batch(
        self,
        rewards: Sequence[Optional[float]],
        dones: Sequence[bool],
        observations: Optional[Sequence] = None,
    ) -> List[Tuple]:
        """Actor-side :meth:`observe_batch`: assemble transitions, don't learn.

        Returns the picklable transition tuples to ship to the learner, in
        worker-slot order — the same order :meth:`observe_batch` stores them,
        so a synchronous one-actor run replays the single-process learning
        sequence exactly. Advances ``total_steps`` (the actor's epsilon
        schedule); the learner counts its own steps in :meth:`_store`.
        """
        items = self._assemble_transitions(rewards, dones, observations)
        self.total_steps += len(items)
        return items

    def collect_flush(self) -> List[Tuple]:
        """Actor-side :meth:`end_episode_batch`: nothing buffered between steps."""
        self._last_batch = []
        return []

    def learn_items(self, items: Sequence[Tuple]) -> Optional[Dict[str, Any]]:
        """Learner-side counterpart: store and learn from shipped transitions.

        Returns the updated acting weights (Q learns on every stored
        transition, so every batch is broadcast-worthy).
        """
        for features, action, reward, next_features, done in items:
            self._store(features, action, reward, next_features, done)
        return self.get_weights()

    def _learn(self) -> None:
        if len(self.replay) < self.batch_size:
            return
        batch, indices, weights = self.replay.sample(self.batch_size)
        new_priorities = np.zeros(len(batch))
        for i, (features, action, reward, next_features, done) in enumerate(batch):
            target = reward
            if not done:
                target += self.gamma * float(np.max(self.target_q(next_features)))
            td_error = target - float(self.q(features)[action])
            # Importance-sampling weighted update.
            scaled_target = float(self.q(features)[action]) + weights[i] * td_error
            self.q.update(features, scaled_target, output_index=action)
            new_priorities[i] = abs(td_error)
        self.replay.update_priorities(indices, new_priorities)
