"""Reinforcement-learning agents and training harness.

The paper trains RLlib agents (PPO, A2C, Ape-X, IMPALA) on the LLVM
phase-ordering environment. Offline, this package provides compact NumPy
implementations of the same four algorithm families over linear
policy/value/Q function approximators, plus the training and evaluation
harness used by the Table VI/VII and Fig. 9 reproductions.
"""

from repro.rl.policies import LinearPolicy, LinearValueFunction, FeatureScaler
from repro.rl.replay_buffer import PrioritizedReplayBuffer
from repro.rl.ppo import PPOAgent
from repro.rl.a2c import A2CAgent
from repro.rl.apex import ApexDQNAgent
from repro.rl.impala import ImpalaAgent
from repro.rl.trainer import (
    EvaluationResult,
    RlWorkerWrapper,
    TrainingResult,
    evaluate_codesize_reduction,
    make_rl_environment,
    make_vec_rl_environment,
    run_vec_episode,
    run_vec_rollouts,
    train_agent,
    train_agent_vec,
)
from repro.rl.distributed import DistributedTrainer, train_agent_distributed

__all__ = [
    "A2CAgent",
    "ApexDQNAgent",
    "DistributedTrainer",
    "EvaluationResult",
    "FeatureScaler",
    "ImpalaAgent",
    "LinearPolicy",
    "LinearValueFunction",
    "PPOAgent",
    "PrioritizedReplayBuffer",
    "RlWorkerWrapper",
    "TrainingResult",
    "evaluate_codesize_reduction",
    "make_rl_environment",
    "make_vec_rl_environment",
    "run_vec_episode",
    "run_vec_rollouts",
    "train_agent",
    "train_agent_distributed",
    "train_agent_vec",
]
