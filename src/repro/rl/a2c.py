"""Advantage Actor-Critic (synchronous A2C)."""

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.rl.policies import FeatureScaler, LinearPolicy, LinearValueFunction


class A2CAgent:
    """Synchronous advantage actor-critic with linear function approximation."""

    name = "a2c"

    def __init__(
        self,
        obs_dim: int,
        num_actions: int,
        learning_rate: float = 0.01,
        gamma: float = 0.99,
        entropy_coef: float = 0.01,
        n_step: int = 5,
        seed: int = 0,
    ):
        self.policy = LinearPolicy(obs_dim, num_actions, learning_rate, seed)
        self.value = LinearValueFunction(obs_dim, 1, learning_rate, seed)
        self.scaler = FeatureScaler(obs_dim)
        self.gamma = gamma
        self.entropy_coef = entropy_coef
        self.n_step = n_step
        self.rng = np.random.default_rng(seed)
        self._buffer: List[tuple] = []
        # Per-worker state for vectorized rollouts (see act_batch/observe_batch).
        self._last_batch: List[Optional[tuple]] = []
        self._slot_buffers: Dict[int, List[tuple]] = {}

    def act(self, observation, greedy: bool = False) -> int:
        features = self.scaler(observation, update=not greedy)
        action, _ = self.policy.act(features, self.rng, greedy=greedy)
        self._last = (features, action)
        return action

    def observe(self, observation, action: int, reward: float, done: bool) -> None:
        del observation, action
        features, action_taken = self._last
        self._buffer.append((features, action_taken, float(reward)))
        if done or len(self._buffer) >= self.n_step:
            self._update(bootstrap=not done)
            if done:
                self._buffer = []

    def end_episode(self) -> None:
        if self._buffer:
            self._update(bootstrap=False)
            self._buffer = []

    # -- vectorized rollout API -------------------------------------------

    def act_batch(self, observations: Sequence, greedy: bool = False) -> List[Optional[int]]:
        """Select one action per rollout worker.

        A ``None`` observation marks a worker whose episode has already
        finished; its slot returns ``None`` and is skipped by
        :meth:`observe_batch`.
        """
        batch: List[Optional[tuple]] = []
        actions: List[Optional[int]] = []
        for observation in observations:
            if observation is None:
                batch.append(None)
                actions.append(None)
                continue
            features = self.scaler(observation, update=not greedy)
            action, _ = self.policy.act(features, self.rng, greedy=greedy)
            batch.append((features, action))
            actions.append(action)
        self._last_batch = batch
        return actions

    def observe_batch(
        self,
        rewards: Sequence[Optional[float]],
        dones: Sequence[bool],
        observations: Optional[Sequence] = None,
    ) -> None:
        """Record one transition per worker from the preceding :meth:`act_batch`.

        Each worker accumulates its own n-step buffer; advantages are computed
        per worker over its own trajectory, so interleaved vectorized rollouts
        produce the same updates as sequential episodes.
        """
        del observations  # Bootstrapping uses the stored features only.
        for slot, (last, reward, done) in enumerate(zip(self._last_batch, rewards, dones)):
            if last is None:
                continue
            features, action = last
            buffer = self._slot_buffers.setdefault(slot, [])
            buffer.append((features, action, float(reward or 0.0)))
            if done or len(buffer) >= self.n_step:
                self._learn_from(buffer, bootstrap=not done)
                self._slot_buffers[slot] = []
        self._last_batch = []

    def end_episode_batch(self) -> None:
        """Flush any transitions still buffered for rollout workers."""
        for slot, buffer in self._slot_buffers.items():
            if buffer:
                self._learn_from(buffer, bootstrap=False)
        self._slot_buffers = {}
        self._last_batch = []

    def _update(self, bootstrap: bool) -> None:
        self._learn_from(self._buffer, bootstrap)
        self._buffer = []

    def _learn_from(self, buffer: List[tuple], bootstrap: bool) -> None:
        if not buffer:
            return
        features = [step[0] for step in buffer]
        actions = [step[1] for step in buffer]
        rewards = [step[2] for step in buffer]
        bootstrap_value = self.value.value(features[-1]) if bootstrap else 0.0
        returns = np.zeros(len(rewards))
        running = bootstrap_value
        for t in reversed(range(len(rewards))):
            running = rewards[t] + self.gamma * running
            returns[t] = running
        for t in range(len(rewards)):
            advantage = returns[t] - self.value.value(features[t])
            self.policy.policy_gradient_step(features[t], actions[t], float(advantage))
            if self.entropy_coef:
                self.policy.entropy_gradient_step(features[t], self.entropy_coef)
            self.value.update(features[t], returns[t])
