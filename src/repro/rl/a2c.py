"""Advantage Actor-Critic (synchronous A2C)."""

from typing import List, Optional

import numpy as np

from repro.rl.policies import FeatureScaler, LinearPolicy, LinearValueFunction


class A2CAgent:
    """Synchronous advantage actor-critic with linear function approximation."""

    name = "a2c"

    def __init__(
        self,
        obs_dim: int,
        num_actions: int,
        learning_rate: float = 0.01,
        gamma: float = 0.99,
        entropy_coef: float = 0.01,
        n_step: int = 5,
        seed: int = 0,
    ):
        self.policy = LinearPolicy(obs_dim, num_actions, learning_rate, seed)
        self.value = LinearValueFunction(obs_dim, 1, learning_rate, seed)
        self.scaler = FeatureScaler(obs_dim)
        self.gamma = gamma
        self.entropy_coef = entropy_coef
        self.n_step = n_step
        self.rng = np.random.default_rng(seed)
        self._buffer: List[tuple] = []

    def act(self, observation, greedy: bool = False) -> int:
        features = self.scaler(observation, update=not greedy)
        action, _ = self.policy.act(features, self.rng, greedy=greedy)
        self._last = (features, action)
        return action

    def observe(self, observation, action: int, reward: float, done: bool) -> None:
        del observation, action
        features, action_taken = self._last
        self._buffer.append((features, action_taken, float(reward)))
        if done or len(self._buffer) >= self.n_step:
            self._update(bootstrap=not done)
            if done:
                self._buffer = []

    def end_episode(self) -> None:
        if self._buffer:
            self._update(bootstrap=False)
            self._buffer = []

    def _update(self, bootstrap: bool) -> None:
        if not self._buffer:
            return
        features = [step[0] for step in self._buffer]
        actions = [step[1] for step in self._buffer]
        rewards = [step[2] for step in self._buffer]
        bootstrap_value = self.value.value(features[-1]) if bootstrap else 0.0
        returns = np.zeros(len(rewards))
        running = bootstrap_value
        for t in reversed(range(len(rewards))):
            running = rewards[t] + self.gamma * running
            returns[t] = running
        for t in range(len(rewards)):
            advantage = returns[t] - self.value.value(features[t])
            self.policy.policy_gradient_step(
                features[t], actions[t], float(advantage) + self.entropy_coef
            )
            self.value.update(features[t], returns[t])
        self._buffer = []
