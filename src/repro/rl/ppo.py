"""Proximal Policy Optimization (clipped surrogate objective)."""

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.rl.policies import FeatureScaler, LinearPolicy, LinearValueFunction


class PPOAgent:
    """PPO with a linear policy and value function.

    Rollouts are collected for a full episode; advantages use generalized
    advantage estimation; the policy update maximizes the clipped surrogate
    objective over several epochs, and an entropy bonus keeps exploration
    alive — the same recipe as RLlib's PPO at a much smaller scale.
    """

    name = "ppo"

    def __init__(
        self,
        obs_dim: int,
        num_actions: int,
        learning_rate: float = 0.01,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        clip_ratio: float = 0.2,
        entropy_coef: float = 0.01,
        update_epochs: int = 4,
        seed: int = 0,
    ):
        self.policy = LinearPolicy(obs_dim, num_actions, learning_rate, seed)
        self.value = LinearValueFunction(obs_dim, 1, learning_rate, seed)
        self.scaler = FeatureScaler(obs_dim)
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.clip_ratio = clip_ratio
        self.entropy_coef = entropy_coef
        self.update_epochs = update_epochs
        self.rng = np.random.default_rng(seed)
        self._trajectory: List[tuple] = []
        # Per-worker state for vectorized rollouts (see act_batch/observe_batch).
        self._last_batch: List[Optional[tuple]] = []
        self._slot_trajectories: Dict[int, List[tuple]] = {}

    # -- acting -------------------------------------------------------------------

    def act(self, observation, greedy: bool = False) -> int:
        features = self.scaler(observation, update=not greedy)
        action, log_prob = self.policy.act(features, self.rng, greedy=greedy)
        self._last = (features, action, log_prob)
        return action

    def observe(self, observation, action: int, reward: float, done: bool) -> None:
        del observation, action  # The features and action were stored by act().
        features, action_taken, log_prob = self._last
        self._trajectory.append((features, action_taken, float(reward), log_prob))
        if done:
            self.end_episode()

    # -- learning -----------------------------------------------------------------

    def end_episode(self) -> Optional[float]:
        trajectory, self._trajectory = self._trajectory, []
        return self._learn(trajectory)

    # -- vectorized rollout API -------------------------------------------

    def act_batch(self, observations: Sequence, greedy: bool = False) -> List[Optional[int]]:
        """Select one action per rollout worker (``None`` marks a finished worker)."""
        batch: List[Optional[tuple]] = []
        actions: List[Optional[int]] = []
        for observation in observations:
            if observation is None:
                batch.append(None)
                actions.append(None)
                continue
            features = self.scaler(observation, update=not greedy)
            action, log_prob = self.policy.act(features, self.rng, greedy=greedy)
            batch.append((features, action, log_prob))
            actions.append(action)
        self._last_batch = batch
        return actions

    def observe_batch(
        self,
        rewards: Sequence[Optional[float]],
        dones: Sequence[bool],
        observations: Optional[Sequence] = None,
    ) -> None:
        """Record one transition per worker from the preceding :meth:`act_batch`.

        Trajectories accumulate per worker; when a worker's episode ends, its
        complete trajectory goes through the same GAE + clipped-surrogate
        update as a sequential episode, so advantages are computed over whole
        per-episode batches.
        """
        del observations  # GAE bootstraps from the stored features only.
        for slot, (last, reward, done) in enumerate(zip(self._last_batch, rewards, dones)):
            if last is None:
                continue
            features, action, log_prob = last
            trajectory = self._slot_trajectories.setdefault(slot, [])
            trajectory.append((features, action, float(reward or 0.0), log_prob))
            if done:
                self._learn(trajectory)
                self._slot_trajectories[slot] = []
        self._last_batch = []

    def end_episode_batch(self) -> None:
        """Flush any incomplete rollout-worker trajectories."""
        for trajectory in self._slot_trajectories.values():
            self._learn(trajectory)
        self._slot_trajectories = {}
        self._last_batch = []

    def _learn(self, trajectory: List[tuple]) -> Optional[float]:
        if not trajectory:
            return None
        features = [step[0] for step in trajectory]
        actions = [step[1] for step in trajectory]
        rewards = [step[2] for step in trajectory]
        old_log_probs = [step[3] for step in trajectory]

        values = [self.value.value(f) for f in features]
        advantages = np.zeros(len(rewards))
        returns = np.zeros(len(rewards))
        next_value = 0.0
        next_advantage = 0.0
        for t in reversed(range(len(rewards))):
            delta = rewards[t] + self.gamma * next_value - values[t]
            next_advantage = delta + self.gamma * self.gae_lambda * next_advantage
            advantages[t] = next_advantage
            next_value = values[t]
            returns[t] = advantages[t] + values[t]
        if advantages.std() > 1e-8:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        for _ in range(self.update_epochs):
            for t in range(len(rewards)):
                ratio = np.exp(self.policy.log_prob(features[t], actions[t]) - old_log_probs[t])
                advantage = advantages[t]
                clipped = np.clip(ratio, 1 - self.clip_ratio, 1 + self.clip_ratio)
                # The clipped surrogate gradient: only step when the
                # unclipped term is the active (smaller) one.
                if (ratio * advantage) <= (clipped * advantage) + 1e-12:
                    self.policy.policy_gradient_step(
                        features[t], actions[t], float(ratio * advantage)
                    )
                if self.entropy_coef:
                    self.policy.entropy_gradient_step(features[t], self.entropy_coef)
                self.value.update(features[t], returns[t])
        return float(np.sum(rewards))
