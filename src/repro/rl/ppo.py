"""Proximal Policy Optimization (clipped surrogate objective)."""

from typing import List, Optional

import numpy as np

from repro.rl.policies import FeatureScaler, LinearPolicy, LinearValueFunction


class PPOAgent:
    """PPO with a linear policy and value function.

    Rollouts are collected for a full episode; advantages use generalized
    advantage estimation; the policy update maximizes the clipped surrogate
    objective over several epochs, and an entropy bonus keeps exploration
    alive — the same recipe as RLlib's PPO at a much smaller scale.
    """

    name = "ppo"

    def __init__(
        self,
        obs_dim: int,
        num_actions: int,
        learning_rate: float = 0.01,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        clip_ratio: float = 0.2,
        entropy_coef: float = 0.01,
        update_epochs: int = 4,
        seed: int = 0,
    ):
        self.policy = LinearPolicy(obs_dim, num_actions, learning_rate, seed)
        self.value = LinearValueFunction(obs_dim, 1, learning_rate, seed)
        self.scaler = FeatureScaler(obs_dim)
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.clip_ratio = clip_ratio
        self.entropy_coef = entropy_coef
        self.update_epochs = update_epochs
        self.rng = np.random.default_rng(seed)
        self._trajectory: List[tuple] = []

    # -- acting -------------------------------------------------------------------

    def act(self, observation, greedy: bool = False) -> int:
        features = self.scaler(observation, update=not greedy)
        action, log_prob = self.policy.act(features, self.rng, greedy=greedy)
        self._last = (features, action, log_prob)
        return action

    def observe(self, observation, action: int, reward: float, done: bool) -> None:
        del observation, action  # The features and action were stored by act().
        features, action_taken, log_prob = self._last
        self._trajectory.append((features, action_taken, float(reward), log_prob))
        if done:
            self.end_episode()

    # -- learning -----------------------------------------------------------------

    def end_episode(self) -> Optional[float]:
        if not self._trajectory:
            return None
        features = [step[0] for step in self._trajectory]
        actions = [step[1] for step in self._trajectory]
        rewards = [step[2] for step in self._trajectory]
        old_log_probs = [step[3] for step in self._trajectory]
        self._trajectory = []

        values = [self.value.value(f) for f in features]
        advantages = np.zeros(len(rewards))
        returns = np.zeros(len(rewards))
        next_value = 0.0
        next_advantage = 0.0
        for t in reversed(range(len(rewards))):
            delta = rewards[t] + self.gamma * next_value - values[t]
            next_advantage = delta + self.gamma * self.gae_lambda * next_advantage
            advantages[t] = next_advantage
            next_value = values[t]
            returns[t] = advantages[t] + values[t]
        if advantages.std() > 1e-8:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        for _ in range(self.update_epochs):
            for t in range(len(rewards)):
                ratio = np.exp(self.policy.log_prob(features[t], actions[t]) - old_log_probs[t])
                advantage = advantages[t]
                clipped = np.clip(ratio, 1 - self.clip_ratio, 1 + self.clip_ratio)
                # The clipped surrogate gradient: only step when the
                # unclipped term is the active (smaller) one.
                if (ratio * advantage) <= (clipped * advantage) + 1e-12:
                    scale = ratio * advantage + self.entropy_coef
                    self.policy.policy_gradient_step(features[t], actions[t], float(scale))
                self.value.update(features[t], returns[t])
        return float(np.sum(rewards))
