"""IMPALA-style off-policy actor-critic with V-trace corrections.

IMPALA decouples acting from learning: actors generate trajectories with a
(slightly stale) behaviour policy and the learner applies V-trace
importance-weighted corrections. In the single-process harness one agent
plays both roles, with the behaviour policy refreshed only every
``sync_interval`` episodes so the off-policy correction machinery is
genuinely exercised. The vectorized rollout API
(``act_batch``/``observe_batch``) runs one trajectory per pool worker; each
completed per-worker trajectory goes through the same V-trace update as a
sequential episode.

:mod:`repro.rl.distributed` splits the roles across processes — the real
IMPALA topology: actors record behaviour log-probs into trajectories
(:meth:`ImpalaAgent.collect_batch`), the learner replays them through the
same V-trace update (:meth:`ImpalaAgent.learn_items`), and the refreshed
policy is broadcast back at behaviour-sync boundaries. The importance
ratios ``pi(a|s) / mu(a|s)`` correct for however stale the actors' policies
have become between broadcasts.
"""

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.rl.policies import FeatureScaler, LinearPolicy, LinearValueFunction


class ImpalaAgent:
    """Off-policy actor-critic with V-trace-style truncated importance weights."""

    name = "impala"

    def __init__(
        self,
        obs_dim: int,
        num_actions: int,
        learning_rate: float = 0.01,
        gamma: float = 0.99,
        rho_clip: float = 1.0,
        c_clip: float = 1.0,
        entropy_coef: float = 0.01,
        sync_interval: int = 5,
        seed: int = 0,
    ):
        self.policy = LinearPolicy(obs_dim, num_actions, learning_rate, seed)
        self.behaviour = LinearPolicy(obs_dim, num_actions, learning_rate, seed)
        self._sync_behaviour()
        self.value = LinearValueFunction(obs_dim, 1, learning_rate, seed)
        self.scaler = FeatureScaler(obs_dim)
        self.gamma = gamma
        self.rho_clip = rho_clip
        self.c_clip = c_clip
        self.entropy_coef = entropy_coef
        self.sync_interval = sync_interval
        self.rng = np.random.default_rng(seed)
        self._trajectory: List[tuple] = []
        self._episodes = 0
        # Per-worker state for vectorized rollouts (see act_batch/observe_batch).
        self._last_batch: List[Optional[tuple]] = []
        self._slot_trajectories: Dict[int, List[tuple]] = {}

    def _sync_behaviour(self) -> None:
        self.behaviour.weights = self.policy.weights.copy()
        self.behaviour.bias = self.policy.bias.copy()

    def act(self, observation, greedy: bool = False) -> int:
        features = self.scaler(observation, update=not greedy)
        policy = self.policy if greedy else self.behaviour
        action, log_prob = policy.act(features, self.rng, greedy=greedy)
        self._last = (features, action, log_prob)
        return action

    def observe(self, observation, action: int, reward: float, done: bool) -> None:
        del observation, action
        features, action_taken, behaviour_log_prob = self._last
        self._trajectory.append((features, action_taken, float(reward), behaviour_log_prob))
        if done:
            self.end_episode()

    def end_episode(self) -> None:
        trajectory, self._trajectory = self._trajectory, []
        self._learn(trajectory)

    # -- vectorized rollout API -------------------------------------------

    def act_batch(self, observations: Sequence, greedy: bool = False) -> List[Optional[int]]:
        """Select one behaviour-policy action per rollout worker.

        A ``None`` observation marks a worker whose episode has already
        finished; its slot returns ``None`` and is skipped by
        :meth:`observe_batch`.
        """
        policy = self.policy if greedy else self.behaviour
        batch: List[Optional[tuple]] = []
        actions: List[Optional[int]] = []
        for observation in observations:
            if observation is None:
                batch.append(None)
                actions.append(None)
                continue
            features = self.scaler(observation, update=not greedy)
            action, log_prob = policy.act(features, self.rng, greedy=greedy)
            batch.append((features, action, log_prob))
            actions.append(action)
        self._last_batch = batch
        return actions

    def observe_batch(
        self,
        rewards: Sequence[Optional[float]],
        dones: Sequence[bool],
        observations: Optional[Sequence] = None,
    ) -> None:
        """Record one transition per worker from the preceding :meth:`act_batch`.

        Trajectories accumulate per worker; a worker's completed trajectory
        goes through the same V-trace update as a sequential episode.
        """
        for trajectory in self.collect_batch(rewards, dones, observations):
            self._learn(trajectory)

    def end_episode_batch(self) -> None:
        """Flush any incomplete rollout-worker trajectories."""
        for trajectory in self.collect_flush():
            self._learn(trajectory)

    # -- distributed actor/learner protocol --------------------------------

    def get_weights(self) -> Dict[str, Any]:
        """The acting-relevant parameters: the target policy's weights."""
        return {"policy": self.policy.get_weights()}

    def set_weights(self, weights: Dict[str, Any]) -> None:
        """Install broadcast weights as this actor's behaviour (and target) policy.

        On an actor this is the distributed analogue of ``_sync_behaviour``:
        the learner's policy snapshot becomes the behaviour policy used for
        acting, and stays frozen until the next broadcast. The target policy
        is updated too so greedy evaluation reflects the latest weights.
        """
        self.policy.set_weights(weights["policy"])
        self.behaviour.set_weights(weights["policy"])

    def collect_batch(
        self,
        rewards: Sequence[Optional[float]],
        dones: Sequence[bool],
        observations: Optional[Sequence] = None,
    ) -> List[List[tuple]]:
        """Actor-side :meth:`observe_batch`: buffer trajectories, don't learn.

        Returns the trajectories completed by this transition batch (in
        worker-slot order, the order :meth:`observe_batch` learns them),
        ready to ship to the learner. Each step carries the behaviour
        log-prob the learner's V-trace correction needs.
        """
        del observations  # V-trace bootstraps from the stored features only.
        items: List[List[tuple]] = []
        for slot, (last, reward, done) in enumerate(zip(self._last_batch, rewards, dones)):
            if last is None:
                continue
            features, action, log_prob = last
            trajectory = self._slot_trajectories.setdefault(slot, [])
            trajectory.append((features, action, float(reward or 0.0), log_prob))
            if done:
                items.append(trajectory)
                self._slot_trajectories[slot] = []
        self._last_batch = []
        return items

    def collect_flush(self) -> List[List[tuple]]:
        """Actor-side :meth:`end_episode_batch`: hand over incomplete trajectories."""
        items = [trajectory for trajectory in self._slot_trajectories.values() if trajectory]
        self._slot_trajectories = {}
        self._last_batch = []
        return items

    def learn_items(self, items: Sequence[List[tuple]]) -> Optional[Dict[str, Any]]:
        """Learner-side counterpart: V-trace-update each shipped trajectory.

        Returns the policy weights snapshotted at the most recent
        behaviour-sync boundary crossed while learning (or ``None`` if no
        boundary was crossed) — exactly the weights a single-process agent
        would have copied into its behaviour policy, so synchronous one-actor
        runs stay seed-for-seed equivalent.
        """
        broadcast: Optional[Dict[str, Any]] = None
        for trajectory in items:
            boundary = self._episodes // self.sync_interval
            self._learn(trajectory)
            if self._episodes // self.sync_interval > boundary:
                broadcast = self.get_weights()
        return broadcast

    # -- learning ----------------------------------------------------------

    def _learn(self, trajectory: List[tuple]) -> None:
        if not trajectory:
            return
        features = [step[0] for step in trajectory]
        actions = [step[1] for step in trajectory]
        rewards = [step[2] for step in trajectory]
        behaviour_log_probs = [step[3] for step in trajectory]

        values = np.array([self.value.value(f) for f in features] + [0.0])
        rhos = np.zeros(len(rewards))
        cs = np.zeros(len(rewards))
        for t in range(len(rewards)):
            log_ratio = self.policy.log_prob(features[t], actions[t]) - behaviour_log_probs[t]
            ratio = float(np.exp(np.clip(log_ratio, -10, 10)))
            rhos[t] = min(self.rho_clip, ratio)
            cs[t] = min(self.c_clip, ratio)

        # V-trace targets.
        vs = np.array(values)
        for t in reversed(range(len(rewards))):
            delta = rhos[t] * (rewards[t] + self.gamma * values[t + 1] - values[t])
            vs[t] = values[t] + delta + self.gamma * cs[t] * (vs[t + 1] - values[t + 1])

        for t in range(len(rewards)):
            advantage = rhos[t] * (rewards[t] + self.gamma * vs[t + 1] - values[t])
            self.policy.policy_gradient_step(features[t], actions[t], float(advantage))
            if self.entropy_coef:
                self.policy.entropy_gradient_step(features[t], self.entropy_coef)
            self.value.update(features[t], vs[t])

        self._episodes += 1
        if self._episodes % self.sync_interval == 0:
            self._sync_behaviour()
