"""Training harness for the instruction-count cost model (Fig. 8)."""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cost_model.ggnn import GatedGraphNeuralNetwork


def relative_error(predictions: Sequence[float], targets: Sequence[float]) -> float:
    """Mean |prediction - target| / |target|, the paper's Fig. 8 metric."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    return float(np.mean(np.abs(predictions - targets) / np.maximum(np.abs(targets), 1e-9)))


@dataclass
class TrainingCurve:
    """Validation relative error per epoch (the data behind Fig. 8)."""

    epochs: List[int] = field(default_factory=list)
    validation_relative_error: List[float] = field(default_factory=list)
    naive_relative_error: float = 0.0


class CostModelTrainer:
    """Trains a linear readout over GGNN graph embeddings with MSE loss."""

    def __init__(self, encoder: Optional[GatedGraphNeuralNetwork] = None, learning_rate: float = 0.05, seed: int = 0):
        self.encoder = encoder or GatedGraphNeuralNetwork(seed=seed)
        self.learning_rate = learning_rate
        self.rng = np.random.default_rng(seed)
        self.weights = np.zeros(self.encoder.output_dim)
        self.bias = 0.0
        self._feature_scale: Optional[np.ndarray] = None
        self._target_scale = 1.0

    # -- features ----------------------------------------------------------------

    def featurize(self, graphs: Sequence) -> np.ndarray:
        return np.stack([self.encoder.encode(graph) for graph in graphs])

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        train_graphs: Sequence,
        train_targets: Sequence[float],
        validation_graphs: Sequence,
        validation_targets: Sequence[float],
        epochs: int = 30,
    ) -> TrainingCurve:
        """SGD training of the readout; returns the validation learning curve."""
        features = self.featurize(train_graphs)
        validation_features = self.featurize(validation_graphs)
        targets = np.asarray(train_targets, dtype=float)
        validation_targets = np.asarray(validation_targets, dtype=float)

        self._feature_scale = np.maximum(np.abs(features).max(axis=0), 1e-9)
        self._target_scale = max(1.0, float(np.abs(targets).max()))
        features_scaled = features / self._feature_scale
        targets_scaled = targets / self._target_scale

        curve = TrainingCurve(
            naive_relative_error=relative_error(
                np.full(len(validation_targets), targets.mean()), validation_targets
            )
        )
        indices = np.arange(len(features_scaled))
        for epoch in range(1, epochs + 1):
            self.rng.shuffle(indices)
            for i in indices:
                prediction = features_scaled[i] @ self.weights + self.bias
                error = prediction - targets_scaled[i]
                # Normalized LMS step: dividing by the feature norm keeps the
                # update stable regardless of graph size.
                step = self.learning_rate * error / (1.0 + features_scaled[i] @ features_scaled[i])
                self.weights -= step * features_scaled[i]
                self.bias -= step
            predictions = self._predict_features(validation_features)
            curve.epochs.append(epoch)
            curve.validation_relative_error.append(relative_error(predictions, validation_targets))
        return curve

    # -- inference -----------------------------------------------------------------

    def _predict_features(self, features: np.ndarray) -> np.ndarray:
        scaled = features / self._feature_scale
        return (scaled @ self.weights + self.bias) * self._target_scale

    def predict(self, graphs: Sequence) -> np.ndarray:
        """Predict instruction counts for a batch of graphs."""
        if self._feature_scale is None:
            raise RuntimeError("CostModelTrainer.predict() called before fit()")
        return self._predict_features(self.featurize(graphs))
