"""A NumPy gated graph neural network over ProGraML graphs."""

import hashlib
from typing import Dict

import networkx as nx
import numpy as np

# Edge flow types, matching repro.llvm.analysis.programl.
_EDGE_TYPES = {"control": 0, "data": 1, "call": 2}


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class GatedGraphNeuralNetwork:
    """Gated graph neural network encoder.

    Node states are initialized from a hash-based embedding of the node text,
    then refined by ``num_steps`` rounds of typed message passing with a GRU
    update (Li et al., 2015). ``encode`` returns a fixed-size graph embedding
    (concatenated sum and mean pooling of the final node states).
    """

    def __init__(self, hidden_dim: int = 64, num_steps: int = 2, seed: int = 0):
        self.hidden_dim = hidden_dim
        self.num_steps = num_steps
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(hidden_dim)
        # One message matrix per edge type and direction.
        self.message_weights = {
            (edge_type, direction): rng.normal(scale=scale, size=(hidden_dim, hidden_dim))
            for edge_type in _EDGE_TYPES.values()
            for direction in (0, 1)
        }
        # GRU parameters.
        self.w_z = rng.normal(scale=scale, size=(hidden_dim, hidden_dim))
        self.u_z = rng.normal(scale=scale, size=(hidden_dim, hidden_dim))
        self.w_r = rng.normal(scale=scale, size=(hidden_dim, hidden_dim))
        self.u_r = rng.normal(scale=scale, size=(hidden_dim, hidden_dim))
        self.w_h = rng.normal(scale=scale, size=(hidden_dim, hidden_dim))
        self.u_h = rng.normal(scale=scale, size=(hidden_dim, hidden_dim))
        self._embedding_cache: Dict[str, np.ndarray] = {}

    @property
    def output_dim(self) -> int:
        return 2 * self.hidden_dim + 1

    def _embed_text(self, text: str) -> np.ndarray:
        if text not in self._embedding_cache:
            digest = hashlib.sha256(text.encode("utf-8")).digest()
            seed = int.from_bytes(digest[:8], "little")
            rng = np.random.default_rng(seed)
            self._embedding_cache[text] = rng.standard_normal(self.hidden_dim) / np.sqrt(self.hidden_dim)
        return self._embedding_cache[text]

    def encode(self, graph: nx.MultiDiGraph) -> np.ndarray:
        """Return the graph embedding (sum pooling, mean pooling, node count)."""
        nodes = list(graph.nodes())
        if not nodes:
            return np.zeros(self.output_dim)
        index = {node: i for i, node in enumerate(nodes)}
        states = np.stack(
            [
                self._embed_text(f"{graph.nodes[node].get('type', '')}/{graph.nodes[node].get('text', '')}")
                for node in nodes
            ]
        )
        edges = [
            (index[u], index[v], _EDGE_TYPES.get(data.get("flow", "control"), 0))
            for u, v, data in graph.edges(data=True)
        ]
        for _ in range(self.num_steps):
            messages = np.zeros_like(states)
            for source, destination, edge_type in edges:
                messages[destination] += states[source] @ self.message_weights[(edge_type, 0)]
                messages[source] += states[destination] @ self.message_weights[(edge_type, 1)]
            update = _sigmoid(messages @ self.w_z + states @ self.u_z)
            reset = _sigmoid(messages @ self.w_r + states @ self.u_r)
            candidate = np.tanh(messages @ self.w_h + (reset * states) @ self.u_h)
            states = (1 - update) * states + update * candidate
        pooled = np.concatenate([states.sum(axis=0), states.mean(axis=0), [float(len(nodes))]])
        return pooled
