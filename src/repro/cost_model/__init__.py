"""Offline cost-model learning (the Fig. 8 experiment).

A gated graph neural network consumes the ProGraML-style program graphs
stored in the state-transition dataset and regresses the program's
instruction count. The message-passing architecture follows Li et al. (2015);
for offline tractability the message/update weights are fixed random
projections (an echo-state GGNN) and training fits the readout layer, which
is sufficient to reproduce the paper's qualitative result (relative error two
orders of magnitude below the naive mean predictor).
"""

from repro.cost_model.ggnn import GatedGraphNeuralNetwork
from repro.cost_model.training import CostModelTrainer, relative_error

__all__ = ["CostModelTrainer", "GatedGraphNeuralNetwork", "relative_error"]
