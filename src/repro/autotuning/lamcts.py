"""LaMCTS-style search: Monte-Carlo tree search with latent space partitioning.

The full LaMCTS algorithm (Wang et al., NeurIPS 2020) learns a hierarchical
partition of the search space, using a classifier at each node to split
samples into a good and a bad region, and runs bandit-style selection over
the partition tree. This implementation keeps the essential structure at a
scale appropriate for the phase-ordering task: nodes partition the space of
action *prefixes*, UCB selects which partition to expand, and random rollouts
complete the episode from the selected prefix.
"""

import math
import random
from typing import Dict, List, Optional

from repro.autotuning.base import Budget, EpisodeTuner, SearchResult


class _Node:
    """One node of the search tree: a fixed action prefix."""

    def __init__(self, prefix: List[int], parent: Optional["_Node"] = None):
        self.prefix = prefix
        self.parent = parent
        self.children: Dict[int, "_Node"] = {}
        self.visits = 0
        self.total_reward = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def ucb(self, exploration: float) -> float:
        if self.visits == 0:
            return float("inf")
        parent_visits = self.parent.visits if self.parent else self.visits
        return self.mean_reward + exploration * math.sqrt(
            math.log(max(1, parent_visits)) / self.visits
        )


class LaMCTSSearch(EpisodeTuner):
    """Prefix-tree MCTS with UCB selection and random rollouts."""

    name = "lamcts"

    def __init__(
        self,
        seed: int = 0,
        rollout_length: int = 40,
        exploration: float = 0.5,
        expansion_width: int = 8,
    ):
        super().__init__(seed)
        self.rollout_length = rollout_length
        self.exploration = exploration
        self.expansion_width = expansion_width

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        rng = random.Random(self.seed)
        num_actions = env.action_space.n
        root = _Node(prefix=[])

        while not budget.exhausted():
            # Selection: walk down the partition tree by UCB.
            node = root
            while node.children and len(node.children) >= self.expansion_width:
                node = max(node.children.values(), key=lambda child: child.ucb(self.exploration))
            # Expansion: add a new child with an unexplored next action.
            if len(node.prefix) < self.rollout_length:
                tried = set(node.children)
                untried = [a for a in range(num_actions) if a not in tried]
                if untried:
                    action = rng.choice(untried)
                    child = _Node(prefix=node.prefix + [action], parent=node)
                    node.children[action] = child
                    node = child
            # Rollout: random suffix to the episode-length horizon.
            suffix_length = max(0, self.rollout_length - len(node.prefix))
            rollout = node.prefix + [rng.randrange(num_actions) for _ in range(suffix_length)]
            reward = self.evaluate_episode(env, rollout, budget)
            self.record(result, rollout, reward)
            # Backpropagation.
            walker: Optional[_Node] = node
            while walker is not None:
                walker.visits += 1
                walker.total_reward += reward
                walker = walker.parent
