"""Random search.

The paper's random search "selects actions randomly until a configurable
number of steps have elapsed without a positive reward", then resets and
tries again, keeping the best episode seen.
"""

import random
from typing import List, Optional, Sequence

from repro.autotuning.base import Budget, ConfigurationTuner, EpisodeTuner, SearchResult
from repro.core.vector import VecCompilerEnv


class RandomSearch(EpisodeTuner):
    """Random episode search with a no-improvement patience.

    When given a :class:`VecCompilerEnv`, each search round evaluates one
    fixed-length random episode per pool worker concurrently (the batched
    variant cannot adapt episode length to the reward stream, so it uses
    ``min(max_episode_length, 2 * patience)`` steps per episode).
    """

    name = "random"

    def __init__(self, seed: int = 0, patience: int = 25, max_episode_length: int = 200):
        super().__init__(seed)
        self.patience = patience
        self.max_episode_length = max_episode_length

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        if isinstance(env, VecCompilerEnv):
            self._search_vectorized(env, budget, result)
            return
        rng = random.Random(self.seed)
        num_actions = env.action_space.n
        while not budget.exhausted():
            env.reset()
            actions: List[int] = []
            best_prefix: List[int] = []
            best_prefix_reward = 0.0
            total = 0.0
            steps_without_improvement = 0
            while (
                steps_without_improvement < self.patience
                and len(actions) < self.max_episode_length
                and not budget.exhausted()
            ):
                action = rng.randrange(num_actions)
                _, reward, done, _ = env.step(action)
                budget.spend()
                actions.append(action)
                total += reward or 0.0
                if reward and reward > 0:
                    steps_without_improvement = 0
                else:
                    steps_without_improvement += 1
                if total > best_prefix_reward:
                    best_prefix_reward = total
                    best_prefix = list(actions)
                if done:
                    break
            self.record(result, best_prefix, best_prefix_reward)

    def _search_vectorized(
        self, vec_env: VecCompilerEnv, budget: Budget, result: SearchResult
    ) -> None:
        rng = random.Random(self.seed)
        num_actions = vec_env.action_space.n
        episode_length = min(self.max_episode_length, max(1, 2 * self.patience))
        while not budget.exhausted():
            batch = [
                [rng.randrange(num_actions) for _ in range(episode_length)]
                for _ in range(vec_env.num_envs)
            ]
            rewards = self.parallel_evaluate(vec_env, batch, budget)
            for sequence, reward in zip(batch, rewards):
                self.record(result, sequence, reward)


class RandomConfigurationSearch(ConfigurationTuner):
    """Uniform random sampling of full configurations (GCC Table V baseline)."""

    name = "random"

    def search(self, objective, cardinalities, max_evaluations, initial):
        rng = random.Random(self.seed)
        best_config = list(initial) if initial else [0] * len(cardinalities)
        best_cost = objective(best_config)
        evaluations = 1
        while evaluations < max_evaluations:
            config = [rng.randrange(c) for c in cardinalities]
            cost = objective(config)
            evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_config = config
        return best_config, best_cost, evaluations
