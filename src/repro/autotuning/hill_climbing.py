"""Hill climbing searches."""

import random
from typing import List

from repro.autotuning.base import Budget, ConfigurationTuner, EpisodeTuner, SearchResult
from repro.core.vector import VecCompilerEnv


class HillClimbingSearch(ConfigurationTuner):
    """Configuration-vector hill climbing (GCC Table V).

    At each step a small number of random changes are made to the current
    configuration; the new configuration is accepted if it improves the
    objective.
    """

    name = "hill-climbing"

    def __init__(self, seed: int = 0, num_mutations: int = 3):
        super().__init__(seed)
        self.num_mutations = num_mutations

    def search(self, objective, cardinalities, max_evaluations, initial):
        rng = random.Random(self.seed)
        current = list(initial) if initial else [0] * len(cardinalities)
        current_cost = objective(current)
        evaluations = 1
        while evaluations < max_evaluations:
            candidate = list(current)
            for _ in range(self.num_mutations):
                index = rng.randrange(len(cardinalities))
                candidate[index] = rng.randrange(cardinalities[index])
            cost = objective(candidate)
            evaluations += 1
            if cost < current_cost:
                current, current_cost = candidate, cost
        return current, current_cost, evaluations


class SequenceHillClimbing(EpisodeTuner):
    """Action-sequence hill climbing for episode environments.

    Maintains a current action sequence; each iteration mutates a few
    positions (or appends/removes actions) and keeps the mutant if the full
    episode reward improves.
    """

    name = "sequence-hill-climbing"

    def __init__(self, seed: int = 0, episode_length: int = 50, num_mutations: int = 2):
        super().__init__(seed)
        self.episode_length = episode_length
        self.num_mutations = num_mutations

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        rng = random.Random(self.seed)
        num_actions = env.action_space.n
        current: List[int] = [rng.randrange(num_actions) for _ in range(self.episode_length)]
        if isinstance(env, VecCompilerEnv):
            self._search_vectorized(env, budget, result, rng, current, num_actions)
            return
        current_reward = self.evaluate_episode(env, current, budget)
        self.record(result, current, current_reward)
        while not budget.exhausted():
            candidate = self._mutate(rng, current, num_actions)
            reward = self.evaluate_episode(env, candidate, budget)
            self.record(result, candidate, reward)
            if reward > current_reward:
                current, current_reward = candidate, reward

    def _mutate(self, rng: random.Random, sequence: List[int], num_actions: int) -> List[int]:
        candidate = list(sequence)
        for _ in range(self.num_mutations):
            mutation = rng.random()
            if mutation < 0.7 or not candidate:
                index = rng.randrange(len(candidate)) if candidate else 0
                if candidate:
                    candidate[index] = rng.randrange(num_actions)
            elif mutation < 0.85:
                candidate.append(rng.randrange(num_actions))
            else:
                candidate.pop(rng.randrange(len(candidate)))
        return candidate

    def _search_vectorized(
        self,
        vec_env: VecCompilerEnv,
        budget: Budget,
        result: SearchResult,
        rng: random.Random,
        current: List[int],
        num_actions: int,
    ) -> None:
        """Batched hill climbing: each round evaluates one mutant per worker."""
        current_reward = self.parallel_evaluate(vec_env, [current], budget)[0]
        self.record(result, current, current_reward)
        while not budget.exhausted():
            candidates = [
                self._mutate(rng, current, num_actions) for _ in range(vec_env.num_envs)
            ]
            rewards = self.parallel_evaluate(vec_env, candidates, budget)
            for candidate, reward in zip(candidates, rewards):
                self.record(result, candidate, reward)
            best = max(range(len(rewards)), key=rewards.__getitem__)
            if rewards[best] > current_reward:
                current, current_reward = candidates[best], rewards[best]
