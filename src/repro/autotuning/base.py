"""Common autotuner interfaces."""

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.vector import VecCompilerEnv


@dataclass
class SearchResult:
    """The outcome of one autotuning run on one benchmark."""

    benchmark: str
    best_actions: List[Any] = field(default_factory=list)
    best_reward: float = float("-inf")
    best_metric: Optional[float] = None
    episodes: int = 0
    steps: int = 0
    walltime: float = 0.0

    def __repr__(self) -> str:
        return (
            f"SearchResult(benchmark={self.benchmark}, best_reward={self.best_reward:.4f}, "
            f"episodes={self.episodes}, steps={self.steps}, walltime={self.walltime:.2f}s)"
        )


class Budget:
    """A combined step/wall-time search budget.

    Elapsed time is measured on the monotonic clock: a wall-clock
    adjustment (NTP step, DST, manual change) mid-search must neither
    terminate the budget early nor extend it.
    """

    def __init__(self, max_steps: Optional[int] = None, max_seconds: Optional[float] = None):
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.steps = 0
        self.start = time.monotonic()

    def spend(self, steps: int = 1) -> None:
        self.steps += steps

    def exhausted(self) -> bool:
        if self.max_steps is not None and self.steps >= self.max_steps:
            return True
        if self.max_seconds is not None and time.monotonic() - self.start >= self.max_seconds:
            return True
        return False

    @property
    def walltime(self) -> float:
        return time.monotonic() - self.start


class EpisodeTuner:
    """Base class for tuners that search over environment action sequences.

    Subclasses implement :meth:`search`. The environment must have a reward
    space selected; the tuner maximizes cumulative episode reward.
    """

    name = "episode-tuner"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def tune(
        self,
        env,
        max_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> SearchResult:
        budget = Budget(max_steps=max_steps, max_seconds=max_seconds)
        benchmark = str(env.benchmark.uri) if env.benchmark else ""
        result = SearchResult(benchmark=benchmark)
        self.search(env, budget, result)
        result.walltime = budget.walltime
        result.steps = budget.steps
        return result

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        raise NotImplementedError

    @staticmethod
    def evaluate_episode(env, actions: Sequence[Any], budget: Budget) -> float:
        """Run one complete episode from reset and return its cumulative reward."""
        env.reset()
        total = 0.0
        if actions:
            _, reward, _, _ = env.multistep(list(actions))
            total = env.episode_reward if env.episode_reward is not None else (reward or 0.0)
        budget.spend(len(actions))
        return float(total)

    @staticmethod
    def parallel_evaluate(
        vec_env: VecCompilerEnv, action_sequences: Sequence[Sequence[Any]], budget: Budget
    ) -> List[float]:
        """Evaluate up to ``num_envs`` complete episodes concurrently.

        Each action sequence is assigned to one pool worker; all workers are
        reset and stepped in batched operations, so under the thread-pool
        backend the candidate evaluations of one search round overlap.
        Returns one cumulative episode reward per sequence, in input order.
        """
        sequences = [list(sequence) for sequence in action_sequences]
        if len(sequences) > vec_env.num_envs:
            raise ValueError(
                f"Got {len(sequences)} action sequences for a pool of "
                f"{vec_env.num_envs} workers"
            )
        padded: List[Optional[List[Any]]] = list(sequences)
        padded += [None] * (vec_env.num_envs - len(sequences))
        vec_env.reset()
        _, step_rewards, _, _ = vec_env.multistep(padded)
        totals: List[float] = []
        for worker, sequence, reward in zip(vec_env.workers, padded, step_rewards):
            if sequence is None:
                continue
            total = getattr(worker, "episode_reward", None)
            if total is None:
                total = reward or 0.0
            totals.append(float(total))
            budget.spend(len(sequence))
        return totals

    @staticmethod
    def record(result: SearchResult, actions: Sequence[Any], reward: float, metric: Optional[float] = None) -> None:
        if reward > result.best_reward:
            result.best_reward = float(reward)
            result.best_actions = list(actions)
            result.best_metric = metric
        result.episodes += 1


class ConfigurationTuner:
    """Base class for tuners that search over integer configuration vectors.

    The objective is a callable ``configuration -> cost`` to *minimize* (e.g.
    object-code size in bytes); cardinalities give the number of choices per
    position.
    """

    name = "configuration-tuner"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def tune(
        self,
        objective: Callable[[Sequence[int]], float],
        cardinalities: Sequence[int],
        max_evaluations: int = 1000,
        initial: Optional[Sequence[int]] = None,
    ) -> SearchResult:
        start = time.monotonic()
        result = SearchResult(benchmark="")
        best_config, best_cost, evaluations = self.search(
            objective, list(cardinalities), max_evaluations, list(initial) if initial else None
        )
        result.best_actions = list(best_config)
        result.best_metric = best_cost
        result.best_reward = -best_cost
        result.steps = evaluations
        result.walltime = time.monotonic() - start
        return result

    def search(self, objective, cardinalities, max_evaluations, initial):
        raise NotImplementedError
