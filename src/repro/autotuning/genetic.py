"""Genetic algorithms.

:class:`GeneticAlgorithm` follows the structure of the ``geneticalgorithm``
PyPI package used in the paper's GCC experiments (population of 100, uniform
crossover, per-gene mutation, elitism). :class:`SequenceGeneticAlgorithm`
adapts the same machinery to variable-length action sequences for the LLVM
phase-ordering task.
"""

import random
from typing import List, Sequence

from repro.autotuning.base import Budget, ConfigurationTuner, EpisodeTuner, SearchResult
from repro.core.vector import VecCompilerEnv


class GeneticAlgorithm(ConfigurationTuner):
    """Configuration-vector GA (defaults mirror geneticalgorithm's)."""

    name = "genetic-algorithm"

    def __init__(
        self,
        seed: int = 0,
        population_size: int = 100,
        mutation_probability: float = 0.1,
        elite_ratio: float = 0.01,
        crossover_probability: float = 0.5,
        parents_portion: float = 0.3,
    ):
        super().__init__(seed)
        self.population_size = population_size
        self.mutation_probability = mutation_probability
        self.elite_ratio = elite_ratio
        self.crossover_probability = crossover_probability
        self.parents_portion = parents_portion

    def search(self, objective, cardinalities, max_evaluations, initial):
        rng = random.Random(self.seed)
        n = len(cardinalities)

        def random_individual() -> List[int]:
            return [rng.randrange(c) for c in cardinalities]

        population: List[List[int]] = [random_individual() for _ in range(self.population_size)]
        if initial:
            population[0] = list(initial)
        evaluations = 0
        scored: List[tuple] = []
        for individual in population:
            if evaluations >= max_evaluations:
                break
            scored.append((objective(individual), individual))
            evaluations += 1
        scored.sort(key=lambda pair: pair[0])
        best_cost, best_config = scored[0]

        num_elite = max(1, int(self.elite_ratio * self.population_size))
        num_parents = max(2, int(self.parents_portion * self.population_size))

        while evaluations < max_evaluations:
            parents = [individual for _, individual in scored[:num_parents]]
            next_population: List[List[int]] = [list(ind) for _, ind in scored[:num_elite]]
            while len(next_population) < self.population_size:
                mother, father = rng.sample(parents, 2)
                child = [
                    mother[i] if rng.random() < self.crossover_probability else father[i]
                    for i in range(n)
                ]
                for i in range(n):
                    if rng.random() < self.mutation_probability:
                        child[i] = rng.randrange(cardinalities[i])
                next_population.append(child)
            scored = scored[:num_elite]
            for individual in next_population[num_elite:]:
                if evaluations >= max_evaluations:
                    break
                scored.append((objective(individual), individual))
                evaluations += 1
            scored.sort(key=lambda pair: pair[0])
            if scored[0][0] < best_cost:
                best_cost, best_config = scored[0]
        return list(best_config), best_cost, evaluations


class SequenceGeneticAlgorithm(EpisodeTuner):
    """GA over fixed-length action sequences for episode environments."""

    name = "sequence-genetic-algorithm"

    def __init__(
        self,
        seed: int = 0,
        episode_length: int = 40,
        population_size: int = 16,
        mutation_probability: float = 0.1,
    ):
        super().__init__(seed)
        self.episode_length = episode_length
        self.population_size = population_size
        self.mutation_probability = mutation_probability

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        rng = random.Random(self.seed)
        num_actions = env.action_space.n

        def random_sequence() -> List[int]:
            return [rng.randrange(num_actions) for _ in range(self.episode_length)]

        if isinstance(env, VecCompilerEnv):
            self._search_vectorized(env, budget, result, rng, num_actions, random_sequence)
            return
        population = [random_sequence() for _ in range(self.population_size)]
        scored = []
        for sequence in population:
            if budget.exhausted():
                break
            reward = self.evaluate_episode(env, sequence, budget)
            self.record(result, sequence, reward)
            scored.append((reward, sequence))
        while not budget.exhausted() and scored:
            scored.sort(key=lambda pair: -pair[0])
            child = self._make_child(rng, scored, num_actions)
            reward = self.evaluate_episode(env, child, budget)
            self.record(result, child, reward)
            scored.append((reward, child))
            scored = scored[: self.population_size]

    def _make_child(self, rng: random.Random, scored: List[tuple], num_actions: int) -> List[int]:
        """Uniform crossover of two of the fitter parents, plus mutation."""
        parents = [sequence for _, sequence in scored[: max(2, len(scored) // 2)]]
        mother, father = rng.sample(parents, 2) if len(parents) >= 2 else (parents[0], parents[0])
        crossover_point = rng.randrange(self.episode_length)
        child = mother[:crossover_point] + father[crossover_point:]
        for i in range(self.episode_length):
            if rng.random() < self.mutation_probability:
                child[i] = rng.randrange(num_actions)
        return child

    def _search_vectorized(
        self, vec_env, budget: Budget, result: SearchResult, rng, num_actions, random_sequence
    ) -> None:
        """Batched GA: the initial population and each generation's offspring
        are evaluated in chunks of ``num_envs`` concurrent episodes."""
        chunk_size = vec_env.num_envs
        scored: List[tuple] = []
        population = [random_sequence() for _ in range(self.population_size)]
        for start in range(0, len(population), chunk_size):
            if budget.exhausted():
                break
            chunk = population[start : start + chunk_size]
            rewards = self.parallel_evaluate(vec_env, chunk, budget)
            for sequence, reward in zip(chunk, rewards):
                self.record(result, sequence, reward)
                scored.append((reward, sequence))
        while not budget.exhausted() and scored:
            scored.sort(key=lambda pair: -pair[0])
            children = [self._make_child(rng, scored, num_actions) for _ in range(chunk_size)]
            rewards = self.parallel_evaluate(vec_env, children, budget)
            for child, reward in zip(children, rewards):
                self.record(result, child, reward)
                scored.append((reward, child))
            scored.sort(key=lambda pair: -pair[0])
            scored = scored[: self.population_size]
