"""Greedy search.

At each step, every possible action is evaluated in a fork of the current
environment; the action with the greatest reward is applied to the real
environment. The search terminates when no action yields a positive reward —
the 10-line algorithm quoted in Table IV, enabled by the ``fork()`` operator.
"""

from typing import Optional

from repro.autotuning.base import Budget, EpisodeTuner, SearchResult


class GreedySearch(EpisodeTuner):
    """One-step-lookahead greedy search using environment forks."""

    name = "greedy"

    def __init__(self, seed: int = 0, max_episode_length: int = 100):
        super().__init__(seed)
        self.max_episode_length = max_episode_length

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        env.reset()
        actions = []
        total = 0.0
        for _ in range(self.max_episode_length):
            if budget.exhausted():
                break
            best_action: Optional[int] = None
            best_reward = 0.0
            for action in range(env.action_space.n):
                if budget.exhausted():
                    break
                fork = env.fork()
                try:
                    _, reward, _, _ = fork.step(action)
                    budget.spend()
                finally:
                    fork.close()
                if reward is not None and reward > best_reward:
                    best_reward = reward
                    best_action = action
            if best_action is None:
                break  # No action produces a positive reward: stop.
            _, reward, done, _ = env.step(best_action)
            budget.spend()
            actions.append(best_action)
            total += reward or 0.0
            if done:
                break
        self.record(result, actions, total)
