"""Nevergrad-style ensemble search.

Nevergrad is a gradient-free optimization platform whose default optimizer is
an *ensemble*: it runs a portfolio of strategies and allocates budget to the
one that performs best. This implementation reproduces that structure with a
portfolio of (1+1) evolution strategies, random search, and a small GA over
action sequences, with softmax budget allocation by observed best reward.
"""

import math
import random
from typing import List

from repro.autotuning.base import Budget, EpisodeTuner, SearchResult


class _OnePlusOne:
    """A (1+1)-ES over fixed-length action sequences."""

    def __init__(self, rng: random.Random, num_actions: int, length: int):
        self.rng = rng
        self.num_actions = num_actions
        self.length = length
        self.current = [rng.randrange(num_actions) for _ in range(length)]
        self.current_reward = float("-inf")
        self.mutation_rate = 1.0 / max(1, length)

    def propose(self) -> List[int]:
        candidate = [
            self.rng.randrange(self.num_actions) if self.rng.random() < self.mutation_rate else gene
            for gene in self.current
        ]
        if candidate == self.current:
            candidate[self.rng.randrange(self.length)] = self.rng.randrange(self.num_actions)
        return candidate

    def tell(self, candidate: List[int], reward: float) -> None:
        # One-fifth success rule adaptation of the mutation rate.
        if reward > self.current_reward:
            self.current, self.current_reward = candidate, reward
            self.mutation_rate = min(0.5, self.mutation_rate * 1.3)
        else:
            self.mutation_rate = max(1.0 / (4 * self.length), self.mutation_rate / 1.05)


class _RandomProposer:
    def __init__(self, rng: random.Random, num_actions: int, length: int):
        self.rng = rng
        self.num_actions = num_actions
        self.length = length

    def propose(self) -> List[int]:
        return [self.rng.randrange(self.num_actions) for _ in range(self.length)]

    def tell(self, candidate: List[int], reward: float) -> None:
        del candidate, reward


class NevergradEnsembleSearch(EpisodeTuner):
    """Portfolio optimizer with adaptive budget allocation."""

    name = "nevergrad"

    def __init__(self, seed: int = 0, episode_length: int = 40, temperature: float = 0.3):
        super().__init__(seed)
        self.episode_length = episode_length
        self.temperature = temperature

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        rng = random.Random(self.seed)
        num_actions = env.action_space.n
        portfolio = [
            _OnePlusOne(random.Random(rng.random()), num_actions, self.episode_length),
            _OnePlusOne(random.Random(rng.random()), num_actions, self.episode_length // 2),
            _RandomProposer(random.Random(rng.random()), num_actions, self.episode_length),
        ]
        best_by_member = [0.0 for _ in portfolio]
        while not budget.exhausted():
            # Softmax allocation over each member's best observed reward.
            scale = max(1e-6, max(best_by_member) - min(best_by_member))
            weights = [math.exp((score - max(best_by_member)) / (self.temperature * scale)) for score in best_by_member]
            total_weight = sum(weights)
            pick = rng.random() * total_weight
            index = 0
            for index, weight in enumerate(weights):
                pick -= weight
                if pick <= 0:
                    break
            member = portfolio[index]
            candidate = member.propose()
            reward = self.evaluate_episode(env, candidate, budget)
            member.tell(candidate, reward)
            best_by_member[index] = max(best_by_member[index], reward)
            self.record(result, candidate, reward)
