"""OpenTuner-style baseline search.

OpenTuner (Ansel et al., PACT 2014) searches over complete configurations
with an ensemble of operators selected by a multi-armed bandit, and evaluates
each configuration by a full compile from scratch — the usage model whose
per-evaluation cost Table II contrasts with CompilerGym's incremental steps.
This implementation reproduces that structure over phase-ordering sequences:
every candidate is evaluated by a full ``reset(); multistep(sequence)``
episode, and the operator (mutation kind) is chosen by an AUC-style bandit.
"""

import random
from typing import Callable, List

from repro.autotuning.base import Budget, EpisodeTuner, SearchResult


class OpenTunerBaselineSearch(EpisodeTuner):
    """Bandit-over-operators configuration search with full re-evaluation."""

    name = "opentuner"

    def __init__(self, seed: int = 0, episode_length: int = 40, bandit_exploration: float = 0.3):
        super().__init__(seed)
        self.episode_length = episode_length
        self.bandit_exploration = bandit_exploration

    def _operators(self, rng: random.Random, num_actions: int) -> List[Callable[[List[int]], List[int]]]:
        def point_mutation(sequence: List[int]) -> List[int]:
            candidate = list(sequence)
            candidate[rng.randrange(len(candidate))] = rng.randrange(num_actions)
            return candidate

        def block_shuffle(sequence: List[int]) -> List[int]:
            candidate = list(sequence)
            start = rng.randrange(len(candidate))
            end = min(len(candidate), start + rng.randint(2, 8))
            block = candidate[start:end]
            rng.shuffle(block)
            candidate[start:end] = block
            return candidate

        def random_restart(sequence: List[int]) -> List[int]:
            del sequence
            return [rng.randrange(num_actions) for _ in range(self.episode_length)]

        def swap(sequence: List[int]) -> List[int]:
            candidate = list(sequence)
            i, j = rng.randrange(len(candidate)), rng.randrange(len(candidate))
            candidate[i], candidate[j] = candidate[j], candidate[i]
            return candidate

        return [point_mutation, block_shuffle, random_restart, swap]

    def search(self, env, budget: Budget, result: SearchResult) -> None:
        rng = random.Random(self.seed)
        num_actions = env.action_space.n
        operators = self._operators(rng, num_actions)
        operator_uses = [1] * len(operators)
        operator_wins = [1.0] * len(operators)

        current = [rng.randrange(num_actions) for _ in range(self.episode_length)]
        current_reward = self.evaluate_episode(env, current, budget)
        self.record(result, current, current_reward)

        while not budget.exhausted():
            # AUC-style bandit: pick the operator with the best win rate plus
            # an exploration bonus.
            scores = [
                operator_wins[i] / operator_uses[i]
                + self.bandit_exploration / operator_uses[i] ** 0.5
                for i in range(len(operators))
            ]
            operator_index = max(range(len(operators)), key=lambda i: scores[i])
            candidate = operators[operator_index](current)
            reward = self.evaluate_episode(env, candidate, budget)
            self.record(result, candidate, reward)
            operator_uses[operator_index] += 1
            if reward > current_reward:
                operator_wins[operator_index] += 1
                current, current_reward = candidate, reward
