"""Autotuning techniques evaluated in the paper (Tables IV and V).

Two families of searchers are provided:

* *Episode tuners* search over action sequences of a CompilerGym environment
  (the LLVM phase-ordering task): greedy search, random search, a
  LaMCTS-style Monte-Carlo tree search with space partitioning, a
  Nevergrad-style ensemble, and an OpenTuner-style recompile-from-scratch
  baseline.
* *Configuration tuners* search over fixed-length integer configuration
  vectors (the GCC flag-tuning task): random search, hill climbing, and a
  genetic algorithm.
"""

from repro.autotuning.base import ConfigurationTuner, EpisodeTuner, SearchResult
from repro.autotuning.random_search import RandomConfigurationSearch, RandomSearch
from repro.autotuning.greedy import GreedySearch
from repro.autotuning.hill_climbing import HillClimbingSearch, SequenceHillClimbing
from repro.autotuning.genetic import GeneticAlgorithm, SequenceGeneticAlgorithm
from repro.autotuning.lamcts import LaMCTSSearch
from repro.autotuning.nevergrad_like import NevergradEnsembleSearch
from repro.autotuning.opentuner_like import OpenTunerBaselineSearch

__all__ = [
    "ConfigurationTuner",
    "EpisodeTuner",
    "GeneticAlgorithm",
    "GreedySearch",
    "HillClimbingSearch",
    "LaMCTSSearch",
    "NevergradEnsembleSearch",
    "OpenTunerBaselineSearch",
    "RandomConfigurationSearch",
    "RandomSearch",
    "SearchResult",
    "SequenceGeneticAlgorithm",
    "SequenceHillClimbing",
]
