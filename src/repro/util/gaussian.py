"""A tiny 1-D Gaussian filter used when plotting learning curves (Fig. 9)."""

import math
from typing import List, Sequence


def gaussian_filter1d(values: Sequence[float], sigma: float) -> List[float]:
    """Smooth a 1-D sequence with a Gaussian kernel (reflect boundary).

    Mirrors ``scipy.ndimage.gaussian_filter1d`` closely enough for plotting
    smoothed learning curves as the paper does (sigma=5).
    """
    values = [float(v) for v in values]
    if sigma <= 0 or len(values) < 2:
        return list(values)
    radius = max(1, int(4 * sigma + 0.5))
    kernel = [math.exp(-0.5 * (i / sigma) ** 2) for i in range(-radius, radius + 1)]
    total = sum(kernel)
    kernel = [k / total for k in kernel]
    n = len(values)

    def reflect(idx: int) -> int:
        # scipy-style "reflect" boundary: abcd -> dcba|abcd|dcba
        while idx < 0 or idx >= n:
            if idx < 0:
                idx = -idx - 1
            else:
                idx = 2 * n - idx - 1
        return idx

    smoothed = []
    for i in range(n):
        acc = 0.0
        for k, offset in enumerate(range(-radius, radius + 1)):
            acc += kernel[k] * values[reflect(i + offset)]
        smoothed.append(acc)
    return smoothed
