"""Shared utilities for the repro package."""

from repro.util.timer import Timer, humanize_duration
from repro.util.truncate import truncate
from repro.util.statistics import arithmetic_mean, geometric_mean, percentile, stdev

__all__ = [
    "Timer",
    "arithmetic_mean",
    "geometric_mean",
    "humanize_duration",
    "percentile",
    "stdev",
    "truncate",
]
