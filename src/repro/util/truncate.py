"""String truncation helpers for log and CLI output."""

from typing import Iterable


def truncate(
    string: str,
    max_line_len: int = 60,
    max_lines: int = 1,
    tail: bool = False,
) -> str:
    """Truncate a string to a maximum number of lines and line length.

    Truncated content is replaced by an ellipsis. With ``tail=True`` the end
    of the string is kept instead of the beginning.
    """
    if max_line_len <= 3:
        raise ValueError("max_line_len must be greater than 3")
    if max_lines < 1:
        raise ValueError("max_lines must be at least 1")
    lines = str(string).split("\n")
    if tail:
        lines = lines[::-1]
    out_lines = []
    for line in lines[:max_lines]:
        if len(line) > max_line_len:
            if tail:
                line = "..." + line[-(max_line_len - 3):]
            else:
                line = line[: max_line_len - 3] + "..."
        out_lines.append(line)
    if len(lines) > max_lines and out_lines:
        last = out_lines[-1]
        if not last.endswith("..."):
            if len(last) + 3 > max_line_len:
                last = last[: max_line_len - 3]
            out_lines[-1] = last + "..."
    if tail:
        out_lines = out_lines[::-1]
    return "\n".join(out_lines)


def truncate_lines(
    lines: Iterable[str],
    max_line_len: int = 60,
    max_lines: int = 5,
) -> str:
    """Truncate an iterable of lines into a single display string."""
    return truncate("\n".join(str(line) for line in lines), max_line_len, max_lines)
