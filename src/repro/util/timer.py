"""Wall-clock timing helpers used throughout the benchmark harness."""

import time


def humanize_duration(seconds: float) -> str:
    """Format a duration in seconds as a short human-readable string."""
    if seconds < 0:
        raise ValueError(f"Duration must be non-negative: {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.3f}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{int(minutes)}m {secs:.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h {minutes}m {secs:.0f}s"


class Timer:
    """Context manager that records the elapsed wall-clock time.

    >>> with Timer() as timer:
    ...     do_something()
    >>> timer.time  # seconds elapsed
    """

    def __init__(self, label: str = None):
        self.label = label
        self._start = None
        self._elapsed = 0.0

    def reset(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __enter__(self) -> "Timer":
        return self.reset()

    def __exit__(self, *exc_info) -> None:
        self._elapsed = time.perf_counter() - self._start

    @property
    def time(self) -> float:
        """Elapsed time in seconds."""
        if self._start is None:
            return 0.0
        if self._elapsed:
            return self._elapsed
        return time.perf_counter() - self._start

    def __str__(self) -> str:
        prefix = f"{self.label}: " if self.label else ""
        return f"{prefix}{humanize_duration(self.time)}"
