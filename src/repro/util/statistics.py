"""Statistics helpers used by evaluation and benchmark reporting."""

import math
from typing import Iterable, Sequence


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean; zero for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero for an empty sequence or any non-positive value.

    The paper reports geometric-mean improvement factors relative to -Oz/-O3;
    non-positive values make the geomean undefined so we return 0, matching
    the upstream implementation.
    """
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation; zero for fewer than two values."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mean = arithmetic_mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not values:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"Percentile must be in [0, 100]: {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)
