"""An OpenTuner-style evaluation driver.

OpenTuner evaluates complete configurations: every measurement is a full
compile of the whole pass sequence, and starting a new search requires
creating an on-disk results database plus several filesystem operations —
which is why the paper measures its environment-initialization cost as by far
the highest of the three systems.
"""

import os
import sqlite3
import tempfile
from typing import List, Optional, Tuple

from repro.baselines.autophase_baseline import AutophaseStyleEnvironment


class OpenTunerStyleEnvironment(AutophaseStyleEnvironment):
    """Adds OpenTuner's per-search database setup to the recompile driver."""

    def __init__(self, benchmark: str = "benchmark://cbench-v1/qsort", working_dir: Optional[str] = None):
        super().__init__(benchmark=benchmark, working_dir=working_dir)
        self._db_path = os.path.join(self.working_dir, "opentuner.db")
        self._db: Optional[sqlite3.Connection] = None

    def _create_results_database(self) -> None:
        """Create the search-results database (several disk operations)."""
        if self._db is not None:
            self._db.close()
        if os.path.exists(self._db_path):
            os.unlink(self._db_path)
        self._db = sqlite3.connect(self._db_path)
        cursor = self._db.cursor()
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS results"
            " (id INTEGER PRIMARY KEY, configuration TEXT, objective REAL)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS desired_results"
            " (id INTEGER PRIMARY KEY, configuration TEXT, state TEXT)"
        )
        cursor.execute("CREATE INDEX IF NOT EXISTS idx_results ON results(objective)")
        self._db.commit()

    def reset(self, benchmark: Optional[str] = None):
        self._create_results_database()
        return super().reset(benchmark=benchmark)

    def step(self, action: int) -> Tuple:
        observation, reward, done, info = super().step(action)
        # Record the measurement in the results database, as OpenTuner does.
        self._db.execute(
            "INSERT INTO results (configuration, objective) VALUES (?, ?)",
            (",".join(map(str, self.actions)), float(self._prev_instruction_count)),
        )
        self._db.commit()
        return observation, reward, done, info

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None
        if os.path.exists(self._db_path):
            os.unlink(self._db_path)
        super().close()
