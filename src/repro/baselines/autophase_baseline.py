"""An Autophase-style recompile-from-scratch environment driver.

Autophase shells out to ``opt`` on every step: it reads the unoptimized
bitcode from disk, parses it, applies the *entire* action sequence so far,
serializes the result, and re-computes features — so the cost of step ``m``
is O(n·m) in program size n and episode length m. This driver reproduces that
usage model over the simulated LLVM substrate. It intentionally bypasses the
client/server runtime and the benchmark cache.
"""

import os
import tempfile
from typing import List, Optional, Tuple

import numpy as np

from repro.llvm.analysis.autophase import autophase_features
from repro.llvm.cost.code_size import ir_instruction_count
from repro.llvm.datasets.suites import make_llvm_datasets
from repro.llvm.ir.parser import parse_module
from repro.llvm.ir.printer import print_module
from repro.llvm.passes.registry import ACTION_SPACE_PASSES, run_pass


class AutophaseStyleEnvironment:
    """A Gym-like environment that recompiles from scratch at every step."""

    def __init__(self, benchmark: str = "benchmark://cbench-v1/qsort", working_dir: Optional[str] = None):
        self.benchmark_uri = benchmark
        self.working_dir = working_dir or tempfile.mkdtemp(prefix="repro-autophase-")
        self.datasets = make_llvm_datasets()
        self.actions: List[int] = []
        self.action_names = list(ACTION_SPACE_PASSES)
        self._source_path = os.path.join(self.working_dir, "input.ll")
        self._prev_instruction_count: Optional[int] = None

    @property
    def num_actions(self) -> int:
        return len(self.action_names)

    def _write_unoptimized_source(self) -> None:
        benchmark = self.datasets.benchmark(self.benchmark_uri)
        with open(self._source_path, "w") as f:
            f.write(print_module(benchmark.program))

    def _compile(self) -> Tuple[np.ndarray, int]:
        """Read + parse the source, apply the whole action sequence, serialize."""
        with open(self._source_path) as f:
            module = parse_module(f.read())
        for action in self.actions:
            run_pass(module, self.action_names[action])
        # Serialize the optimized output, as the real flow writes a new .bc.
        output_path = os.path.join(self.working_dir, "output.ll")
        with open(output_path, "w") as f:
            f.write(print_module(module))
        return autophase_features(module), ir_instruction_count(module)

    def reset(self, benchmark: Optional[str] = None) -> np.ndarray:
        if benchmark is not None:
            self.benchmark_uri = benchmark
        self.actions = []
        # Environment initialization cost: materialize the benchmark to disk
        # and run the initial compile, as the real pipeline does.
        self._write_unoptimized_source()
        observation, instruction_count = self._compile()
        self._prev_instruction_count = instruction_count
        return observation

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, dict]:
        self.actions.append(int(action))
        observation, instruction_count = self._compile()
        reward = float(self._prev_instruction_count - instruction_count)
        self._prev_instruction_count = instruction_count
        return observation, reward, False, {}

    def close(self) -> None:
        for name in ("input.ll", "output.ll"):
            path = os.path.join(self.working_dir, name)
            if os.path.exists(path):
                os.unlink(path)
