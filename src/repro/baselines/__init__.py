"""Prior-work baseline drivers used by the Table II efficiency comparison.

The paper compares CompilerGym's incremental client/server environments with
two prior usage models of the *same* compiler:

* Autophase-style environments re-read, re-parse, re-apply the whole pass
  sequence and re-serialize the program at every step, so step cost grows
  with episode length (O(nm)).
* OpenTuner-style evaluation additionally pays a per-search database and
  filesystem setup cost at environment initialization.

Both baselines drive the same simulated LLVM substrate so the comparison
isolates the architectural difference, exactly as in the paper.
"""

from repro.baselines.autophase_baseline import AutophaseStyleEnvironment
from repro.baselines.opentuner_baseline import OpenTunerStyleEnvironment

__all__ = ["AutophaseStyleEnvironment", "OpenTunerStyleEnvironment"]
