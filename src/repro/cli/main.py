"""The ``repro-compilergym`` command-line interface.

Reproduces the core of the paper's command-line tool suite: describing
environments and their spaces, listing datasets, running (optionally
parallelized) random searches, replaying recorded states, and validating
results. Run ``repro-compilergym --help`` for usage.
"""

import argparse
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import repro
from repro.core.compiler_env_state import CompilerEnvStateReader, CompilerEnvStateWriter


def _cmd_envs(args) -> int:
    del args
    for env_id in repro.COMPILER_GYM_ENVS:
        print(env_id)
    return 0


def _cmd_describe(args) -> int:
    env = repro.make(args.env)
    try:
        print(f"Environment: {args.env}")
        print(f"Compiler version: {env.compiler_version}")
        print(f"\nAction space: {env.action_space}")
        if hasattr(env.action_space, "names"):
            for name in env.action_space.names[: args.limit]:
                print(f"  {name}")
            if env.action_space.n > args.limit:
                print(f"  ... ({env.action_space.n - args.limit} more)")
        print("\nObservation spaces:")
        for spec in env.observation.spaces.values():
            print(f"  {spec.id}: {spec.space}")
        print("\nReward spaces:")
        for reward in env.reward.spaces.values():
            print(f"  {reward.name} (deterministic={reward.deterministic}, "
                  f"platform_dependent={reward.platform_dependent})")
    finally:
        env.close()
    return 0


def _cmd_datasets(args) -> int:
    env = repro.make(args.env)
    try:
        print(f"{'Dataset':<40} {'Benchmarks':>12}  Description")
        for dataset in env.datasets:
            size = dataset.size if dataset.size else "(generator)"
            print(f"{dataset.name:<40} {size!s:>12}  {dataset.description}")
    finally:
        env.close()
    return 0


def _cmd_serve(args) -> int:
    """Run the standalone compiler service daemon (`repro serve`)."""
    import os
    import signal

    from repro.core.service.runtime.server import make_env_server

    server = make_env_server(
        args.env,
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        session_timeout=args.session_timeout if args.session_timeout > 0 else None,
        auth_tokens=args.auth_token or None,
        result_cache=(
            False
            if args.result_cache_mb <= 0
            else int(args.result_cache_mb * 1024 * 1024)
        ),
    )

    def _handle_signal(signum, frame):  # noqa: ARG001 - signal API
        del signum, frame
        # Signal handlers run on the main thread, which may be mid-accept
        # inside serve_forever() holding server locks; only request the exit
        # here and do the full (lock-taking) shutdown below in normal
        # context.
        server.request_shutdown()

    signal.signal(signal.SIGINT, _handle_signal)
    signal.signal(signal.SIGTERM, _handle_signal)
    print(f"Serving {args.env} on {server.url} (pid {os.getpid()})", flush=True)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
    info = server.server_info()
    print(
        f"Service daemon shut down cleanly: {info['connections_served']} connection(s), "
        f"{info['runtime_stats'].get('start_session', 0)} session(s) served, "
        f"{info['reaped_sessions']} reaped",
        flush=True,
    )
    result_cache = (info.get("cache_stats") or {}).get("result_cache")
    if result_cache:
        print(
            f"Result cache: {result_cache['hits']} hit(s), "
            f"{result_cache['misses']} miss(es) "
            f"({100.0 * result_cache['hit_rate']:.1f}% hit rate), "
            f"{result_cache['evictions']} eviction(s), "
            f"{result_cache['size_in_bytes'] / (1024 * 1024):.1f} MiB used",
            flush=True,
        )
    print(
        f"Health: uptime {info['uptime_s']:.1f}s, "
        f"{info['heartbeats_served']} heartbeat(s) answered",
        flush=True,
    )
    return 0


def _cmd_gateway(args) -> int:
    """Run the session-routing gateway over a daemon fleet (`repro gateway`)."""
    import os
    import signal

    from repro.core.service.gateway import ServiceGateway

    daemon_urls = []
    for entry in args.daemon_url or []:
        daemon_urls.extend(u for u in entry.split(",") if u)
    gateway = ServiceGateway(
        daemon_urls=daemon_urls or None,
        env_id=args.env,
        daemons=args.daemons,
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        auth_tokens=args.auth_token or None,
        fleet_token=args.fleet_token,
        # The serving CLI runs the proactive health layer by default; embedded
        # gateways (tests, benchmarks) opt in explicitly.
        heartbeat_interval=(
            args.heartbeat_interval if args.heartbeat_interval > 0 else None
        ),
    )

    def _handle_signal(signum, frame):  # noqa: ARG001 - signal API
        del signum, frame
        gateway.request_shutdown()

    signal.signal(signal.SIGINT, _handle_signal)
    signal.signal(signal.SIGTERM, _handle_signal)
    for daemon in gateway.live_daemons():
        origin = f"pid {daemon.pid}" if daemon.pid is not None else "attached"
        print(f"Gateway daemon {daemon.index}: {origin} url {daemon.url}", flush=True)
    print(
        f"Serving gateway for {args.env} on {gateway.url} (pid {os.getpid()}) "
        f"fronting {len(gateway.live_daemons())} daemon(s)",
        flush=True,
    )
    try:
        gateway.serve_forever()
    finally:
        # Snapshot fleet health before shutdown tears the fleet down.
        fleet_health = [
            (
                daemon.index,
                daemon.breaker.state,
                daemon.breaker.trips,
                daemon.last_heartbeat_age_s(),
            )
            for daemon in gateway.live_daemons()
        ]
        gateway.shutdown()
    info = gateway.server_info()
    print(
        f"Gateway shut down cleanly: {info['connections_served']} connection(s), "
        f"{info['failovers']} failover(s), "
        f"{info['rehomed_sessions']} session(s) re-homed",
        flush=True,
    )
    monitor = info.get("health_monitor")
    if monitor:
        print(
            f"Health: uptime {info['uptime_s']:.1f}s, heartbeat every "
            f"{monitor['interval_s']:g}s, {monitor['probes']} probe(s), "
            f"{monitor['deaths_detected']} death(s) detected proactively",
            flush=True,
        )
    for index, breaker_state, trips, heartbeat_age in fleet_health:
        age = "never" if heartbeat_age is None else f"{heartbeat_age:.1f}s ago"
        print(
            f"Daemon {index}: breaker {breaker_state} ({trips} trip(s)), "
            f"last heartbeat {age}",
            flush=True,
        )
    return 0


def _chaos_soak_once(args, run_index: int):
    """One seeded chaos-soak run: a fresh 2-daemon gateway, a fresh env
    wrapped in a fresh ChaosTransport over the same FaultPlan, the same
    seeded action workload. Returns (traces, injected, digest)."""
    import hashlib
    import random as random_module

    from repro.core.service.chaos import FaultEvent, FaultPlan
    from repro.core.service.gateway import ServiceGateway
    from repro.errors import ServiceError

    gateway = ServiceGateway(
        env_id=args.env,
        daemons=args.daemons,
        heartbeat_interval=args.heartbeat_interval,
    ).start()
    env = None
    try:
        events = list(
            FaultPlan.generate(
                seed=args.seed,
                calls=args.fault_calls,
                rate=args.fault_rate,
                kinds=("cut_send", "cut_recv", "refuse_connect"),
            ).events
        )
        if args.kill_call >= 0:
            # SIGKILL daemon 0 at the first step() call at or after the
            # index: the step path carries the gateway's failover retry, so
            # the kill is absorbed transparently whatever the monitor/client
            # race — the action trace is identical either way.
            events.append(
                FaultEvent(call_index=args.kill_call, kind="kill_daemon",
                           method="step", param=0.0)
            )
        plan = FaultPlan(
            events=tuple(sorted(events, key=lambda e: e.call_index)),
            seed=args.seed,
        )
        kill_pids = [d.pid for d in gateway.live_daemons() if d.pid is not None]

        env = repro.make(
            args.env,
            benchmark=args.benchmark,
            reward_space="IrInstructionCount",
            service_url=gateway.url,
            chaos=plan,
        )
        env.service.transport.kill_targets = kill_pids
        rng = random_module.Random(args.seed)
        num_actions = env.action_space.n
        traces = []
        failed_episodes = 0
        for _ in range(args.episodes):
            try:
                env.reset()
                for _ in range(args.steps):
                    _, _, done, step_info = env.step(rng.randrange(num_actions))
                    if done:
                        # The env's fault-tolerance path ends the episode
                        # (done=True + error_details) on a non-retryable
                        # injected fault instead of raising: that is the
                        # at-most-once contract working, not a soak failure.
                        # The truncated (acknowledged-only) trace is part of
                        # the deterministic fingerprint.
                        if "error_details" in step_info:
                            failed_episodes += 1
                        break
            except (ServiceError, ConnectionError, OSError):
                # reset() itself can die on an injected fault (e.g. the
                # retry budget exhausted by scheduled refusals).
                failed_episodes += 1
            traces.append(list(env.actions))
        injected = list(env.service.transport.injected)
        digest = hashlib.sha256(repr(traces).encode()).hexdigest()[:32]
        print(
            f"Run {run_index}: {len(traces)}/{args.episodes} episode(s) "
            f"completed ({failed_episodes} truncated by faults), "
            f"{len(injected)} fault(s) injected, "
            f"{gateway.failovers} failover(s), "
            f"{gateway.rehomed_sessions} session(s) re-homed"
        )
        return traces, injected, digest
    finally:
        if env is not None:
            try:
                env.close()
            except Exception:  # noqa: BLE001 - chaos may break close() too
                pass
        gateway.shutdown()


def _cmd_chaos_soak(args) -> int:
    """Deterministic chaos soak: seeded faults over a 2-daemon gateway.

    Runs a random-action workload through ``make(..., chaos=FaultPlan)``
    against an in-process gateway fleet with the heartbeat monitor on, under
    a seeded schedule of frame cuts, refused connects, and a whole-daemon
    SIGKILL. Asserts completion, prints the injected fault log, and (with
    ``--runs`` > 1) asserts the soak is deterministic: the same seed must
    yield the same injected fault sequence and identical final action
    traces.
    """
    from repro.core.service.chaos import FaultPlan

    plan_preview = FaultPlan.generate(
        seed=args.seed, calls=args.fault_calls, rate=args.fault_rate,
        kinds=("cut_send", "cut_recv", "refuse_connect"),
    )
    print(
        f"Chaos soak: seed {args.seed}, {args.episodes} episode(s) x "
        f"{args.steps} step(s) over {args.daemons} daemon(s), "
        f"heartbeat every {args.heartbeat_interval:g}s"
    )
    print(f"Fault plan: {plan_preview.describe()}"
          + (f" + SIGKILL at step call >= {args.kill_call}" if args.kill_call >= 0 else ""))
    digests = []
    injected_logs = []
    for run_index in range(max(1, args.runs)):
        traces, injected, digest = _chaos_soak_once(args, run_index)
        if not any(traces):
            print("FAIL: no episode produced any actions", file=sys.stderr)
            return 1
        digests.append(digest)
        injected_logs.append(injected)
        print(f"Injected fault sequence: {injected}")
        print(f"Action trace digest: {digest}", flush=True)
    if len(digests) > 1:
        if len(set(digests)) != 1 or any(
            log != injected_logs[0] for log in injected_logs
        ):
            print(
                f"FAIL: chaos soak is NOT deterministic across {args.runs} "
                f"runs: digests {digests}",
                file=sys.stderr,
            )
            return 1
        print(f"Deterministic: {args.runs} run(s) produced identical fault "
              f"sequences and action traces")
    return 0


def _random_search_worker(
    env_id: str,
    benchmark: str,
    steps: int,
    patience: int,
    seed: int,
    workers: int = 1,
    service_url: Optional[str] = None,
):
    from repro.autotuning import RandomSearch
    from repro.core.vector import VecCompilerEnv

    env = repro.make(
        env_id,
        benchmark=benchmark,
        reward_space="IrInstructionCount",
        service_url=service_url,
    )
    tuner = RandomSearch(seed=seed, patience=patience)
    if workers > 1:
        # Vectorized search: the env is forked into a pool and candidate
        # episodes are evaluated concurrently on a thread-pool backend.
        with VecCompilerEnv(env, n=workers, backend="thread") as vec:
            result = tuner.tune(vec, max_steps=steps)
            root = vec.workers[0]
            root.reset()
            if result.best_actions:
                root.multistep(result.best_actions)
            return root.state, result
    try:
        result = tuner.tune(env, max_steps=steps)
        env.reset()
        if result.best_actions:
            env.multistep(result.best_actions)
        return env.state, result
    finally:
        env.close()


def _cmd_random_search(args) -> int:
    benchmarks = args.benchmark or ["benchmark://cbench-v1/qsort"]
    results = []
    with ThreadPoolExecutor(max_workers=args.nproc) as executor:
        futures = [
            executor.submit(
                _random_search_worker,
                args.env,
                benchmark,
                args.steps,
                args.patience,
                seed,
                args.workers,
                args.service_url,
            )
            for seed, benchmark in enumerate(benchmarks)
        ]
        for future in futures:
            state, result = future.result()
            results.append(state)
            print(f"{state.benchmark}: reward={result.best_reward:.4f} "
                  f"steps={result.steps} walltime={result.walltime:.2f}s")
    if args.output:
        with open(args.output, "w") as f:
            writer = CompilerEnvStateWriter(f)
            for state in results:
                writer.write_state(state)
        print(f"Wrote {len(results)} states to {args.output}")
    return 0


def _train_distributed(args, benchmarks):
    """Multi-process actor/learner training (``train --actors N``)."""
    from repro.rl.distributed import DistributedTrainer

    if args.agent not in ("apex", "impala"):
        print(
            f"train --actors requires an off-policy agent (apex, impala); "
            f"got {args.agent!r}",
            file=sys.stderr,
        )
        return None, None
    if args.no_auto_reset:
        print(
            "train --actors collects continuous auto-reset rollouts by design; "
            "--no-auto-reset only applies to single-process training (drop --actors)",
            file=sys.stderr,
        )
        return None, None
    if args.resume and not args.checkpoint_dir:
        print("train --resume requires --checkpoint-dir", file=sys.stderr)
        return None, None
    agent_kwargs = {}
    if args.agent == "apex" and args.learner_batch:
        agent_kwargs["batch_size"] = args.learner_batch
    make_kwargs = {"benchmark": benchmarks[0], "reward_space": "IrInstructionCountNorm"}
    trainer = DistributedTrainer(
        agent=args.agent,
        agent_kwargs=agent_kwargs,
        env_id=args.env,
        make_kwargs=make_kwargs,
        service_url=args.service_url,
        num_actors=args.actors,
        envs_per_actor=args.workers,
        env_backend=args.backend,
        episode_length=args.episode_length,
        broadcast_interval=args.broadcast_interval,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        resume=args.resume,
    )
    result = trainer.train(benchmarks, episodes=args.episodes)
    if args.checkpoint_dir:
        resumed = trainer.stats.get("resumed_episodes", 0)
        print(
            f"Checkpoint: {args.checkpoint_dir} "
            f"({resumed} episode(s) resumed, "
            f"{len(result.episode_rewards)} total)",
            flush=True,
        )
    return result, trainer


def _train_single_process(args, benchmarks):
    from repro.rl import A2CAgent, ApexDQNAgent, ImpalaAgent, PPOAgent
    from repro.rl.trainer import (
        AUTOPHASE_ACTION_SUBSET,
        make_vec_rl_environment,
        observation_dim,
        train_agent_vec,
    )

    agent_types = {"a2c": A2CAgent, "ppo": PPOAgent, "impala": ImpalaAgent, "apex": ApexDQNAgent}
    num_actions = len(AUTOPHASE_ACTION_SUBSET)
    agent = agent_types[args.agent](
        obs_dim=observation_dim("Autophase", True, num_actions),
        num_actions=num_actions,
        seed=args.seed,
    )
    env = repro.make(
        args.env,
        benchmark=benchmarks[0],
        reward_space="IrInstructionCountNorm",
        service_url=args.service_url,
    )
    # make_vec_rl_environment closes env for us if pool construction fails.
    vec = make_vec_rl_environment(
        env,
        n=args.workers,
        backend=args.backend,
        episode_length=args.episode_length,
        auto_reset=not args.no_auto_reset,
    )
    try:
        return train_agent_vec(agent, vec, benchmarks, episodes=args.episodes, seed=args.seed)
    finally:
        vec.close()


def _cmd_train(args) -> int:
    benchmarks = args.benchmark or ["benchmark://cbench-v1/qsort"]
    trainer = None
    if args.actors > 0:
        result, trainer = _train_distributed(args, benchmarks)
        if result is None:
            return 2
        topology = (
            f"{args.actors} actor process(es) x {args.workers} env(s) "
            f"[{args.backend} backend, "
            f"{'synchronous' if trainer.stats.get('synchronous', True) else 'async'} learner]"
        )
    else:
        result = _train_single_process(args, benchmarks)
        topology = f"{args.workers} worker(s) [{args.backend} backend]"
    rewards = result.episode_rewards
    window = max(1, len(rewards) // 5)
    print(f"{args.agent}: {len(rewards)} episodes on {topology}")
    print(f"  mean episode reward (first {window}): "
          f"{sum(rewards[:window]) / window:.4f}")
    print(f"  mean episode reward (last {window}):  "
          f"{sum(rewards[-window:]) / window:.4f}")
    if trainer is not None and "total_env_steps" in trainer.stats:
        stats = trainer.stats
        print(f"  distributed: {stats['total_env_steps']} env steps, "
              f"{stats['items_learned']} experience items learned, "
              f"{sum(stats['actor_weight_updates'].values())} actor weight update(s) "
              f"in {stats['walltime_s']:.2f}s")
    if args.output:
        with open(args.output, "w") as f:
            json.dump(
                {
                    "agent": result.agent_name,
                    "episodes": result.episodes,
                    "actors": args.actors,
                    "workers": args.workers,
                    "backend": args.backend,
                    "episode_rewards": rewards,
                    "distributed_stats": trainer.stats if trainer else None,
                },
                f,
                indent=2,
            )
        print(f"Wrote learning curve to {args.output}")
    return 0


def _cmd_replay(args) -> int:
    env = repro.make(args.env, reward_space=args.reward)
    try:
        with open(args.states) as f:
            for state in CompilerEnvStateReader(f):
                env.apply(state)
                print(f"{state.benchmark}: replayed reward={env.episode_reward}")
    finally:
        env.close()
    return 0


def _cmd_validate(args) -> int:
    env = repro.make(args.env, reward_space=args.reward)
    exit_code = 0
    try:
        with open(args.states) as f:
            for state in CompilerEnvStateReader(f):
                result = env.validate(state)
                print(result)
                if not result.okay():
                    exit_code = 1
    finally:
        env.close()
    return exit_code


def _cmd_lint(args) -> int:
    from repro.llvm.passes.validate import lint_datasets, verifier_self_test

    # The self-test guards the sweep: a regressed verifier that rejects
    # nothing would otherwise green-light every pass.
    self_test = verifier_self_test()
    if self_test:
        for failure in self_test:
            print(f"SELF-TEST FAIL: {failure}")
        return 1
    print("verifier self-test: ok (5/5 seeded miscompiles rejected)")

    progress = print if not args.quiet else None
    report = lint_datasets(
        dataset_names=args.dataset or None,
        benchmarks_per_dataset=args.benchmarks_per_dataset,
        passes=args.passes or None,
        differential=not args.no_differential,
        progress=progress,
    )
    print(
        f"lint: {report.benchmarks} benchmark(s), {report.checks} pass-checks, "
        f"{len(report.failures)} failure(s)"
    )
    for failure in report.failures:
        print(f"FAIL {failure}")
    return 0 if report.ok else 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compilergym",
        description="Command-line tools for the CompilerGym reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("envs", help="List registered environments").set_defaults(func=_cmd_envs)

    describe = sub.add_parser("describe", help="Describe an environment's spaces")
    describe.add_argument("--env", default="llvm-v0")
    describe.add_argument("--limit", type=int, default=20, help="Max actions to list")
    describe.set_defaults(func=_cmd_describe)

    datasets = sub.add_parser("datasets", help="List an environment's datasets")
    datasets.add_argument("--env", default="llvm-v0")
    datasets.set_defaults(func=_cmd_datasets)

    serve = sub.add_parser(
        "serve",
        help="Run the standalone compiler service daemon: one long-lived "
             "process hosting many compilation sessions for socket clients",
        description="Run the standalone compiler service daemon. "
                    "Clients are authenticated with --auth-token bearer "
                    "tokens and messages travel on the versioned typed wire "
                    "codec, but non-message values still embed pickles: "
                    "serve only on loopback, a Unix socket, or a trusted "
                    "network (tunnel across machines).",
    )
    serve.add_argument("--env", default="llvm-v0",
                       help="Environment whose compiler service to host")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP listen address. Only expose beyond loopback "
                            "on a trusted network: auth tokens separate "
                            "tenants but the wire is not hardened transport")
    serve.add_argument("--port", type=int, default=5499,
                       help="TCP listen port (0 picks a free port)")
    serve.add_argument("--unix-socket", default=None,
                       help="Serve on a Unix domain socket path instead of TCP")
    serve.add_argument("--session-timeout", type=float, default=3600.0,
                       help="Seconds after which idle sessions are reaped "
                            "(<= 0 disables reaping)")
    serve.add_argument("--auth-token", action="append", default=None,
                       help="Require clients to present one of these auth "
                            "tokens in the connection handshake (repeatable). "
                            "Omit to serve unauthenticated")
    serve.add_argument("--result-cache-mb", type=float, default=64.0,
                       help="Byte budget (in MiB) for the daemon-wide "
                            "(benchmark, action-prefix) result cache shared "
                            "across sessions and tenants (0 disables)")
    serve.set_defaults(func=_cmd_serve)

    gateway = sub.add_parser(
        "gateway",
        help="Run the session-routing gateway: one URL fronting a fleet of "
             "compiler daemons, with least-load placement and failover",
        description="Run the session-routing gateway. Clients attach to the "
                    "gateway URL exactly as they would to a single daemon "
                    "(make(..., service_url=...), vectorized pools, train "
                    "--service-url, the Explorer REST API); the gateway "
                    "places each session on the least-loaded daemon and "
                    "replays sessions onto survivors when a daemon dies.",
    )
    gateway.add_argument("--env", default="llvm-v0",
                         help="Environment id for locally spawned daemons")
    gateway.add_argument("--daemons", type=int, default=2,
                         help="Local daemon worker processes to spawn (0 to "
                              "front only --daemon-url fleet members)")
    gateway.add_argument("--daemon-url", action="append", default=None,
                         help="Attach an already-running daemon by URL "
                              "(repeatable; comma-separated lists accepted)")
    gateway.add_argument("--host", default="127.0.0.1",
                         help="TCP listen address of the gateway itself")
    gateway.add_argument("--port", type=int, default=5498,
                         help="TCP listen port (0 picks a free port)")
    gateway.add_argument("--unix-socket", default=None,
                         help="Serve on a Unix domain socket path instead of TCP")
    gateway.add_argument("--auth-token", action="append", default=None,
                         help="Require clients to present one of these auth "
                              "tokens (repeatable). Tokens also scope session "
                              "ownership: one tenant cannot touch another's "
                              "sessions. Omit to serve unauthenticated")
    gateway.add_argument("--fleet-token", default=None,
                         help="Auth token the gateway presents to its daemons; "
                              "spawned daemons are configured to require it")
    gateway.add_argument("--heartbeat-interval", type=float, default=1.0,
                         help="Seconds between proactive daemon liveness "
                              "probes; a SIGKILLed daemon is detected and its "
                              "sessions re-homed within ~2 intervals with no "
                              "client call needed (<= 0 disables the monitor)")
    gateway.set_defaults(func=_cmd_gateway)

    chaos_soak = sub.add_parser(
        "chaos-soak",
        help="Deterministic fault-injection soak: a seeded FaultPlan (frame "
             "cuts, refused connects, daemon SIGKILL) over a 2-daemon "
             "gateway, asserting completion and reproducible action traces",
        description="Run a random-action workload through a fault-injecting "
                    "ChaosTransport against an in-process gateway fleet with "
                    "the heartbeat health monitor on. The fault schedule is "
                    "fully determined by --seed; with --runs 2 the command "
                    "fails unless both runs inject the identical fault "
                    "sequence and produce identical final action traces.",
    )
    chaos_soak.add_argument("--env", default="llvm-v0")
    chaos_soak.add_argument("--benchmark", default="benchmark://cbench-v1/qsort")
    chaos_soak.add_argument("--seed", type=int, default=0,
                            help="Seed of the fault schedule and the action "
                                 "workload (same seed -> same run)")
    chaos_soak.add_argument("--episodes", type=int, default=4)
    chaos_soak.add_argument("--steps", type=int, default=6,
                            help="Actions attempted per episode")
    chaos_soak.add_argument("--daemons", type=int, default=2,
                            help="Gateway fleet size")
    chaos_soak.add_argument("--heartbeat-interval", type=float, default=0.25)
    chaos_soak.add_argument("--fault-calls", type=int, default=40,
                            help="Call-index range the seeded faults are "
                                 "drawn over")
    chaos_soak.add_argument("--fault-rate", type=float, default=0.15,
                            help="Per-call fault probability in the seeded "
                                 "schedule")
    chaos_soak.add_argument("--kill-call", type=int, default=12,
                            help="SIGKILL gateway daemon 0 at the first "
                                 "step() call at or after this call index "
                                 "(-1 disables the kill)")
    chaos_soak.add_argument("--runs", type=int, default=1,
                            help="Repeat the identical soak N times and fail "
                                 "unless every run matches (determinism gate)")
    chaos_soak.set_defaults(func=_cmd_chaos_soak)

    search = sub.add_parser("random-search", help="Run (parallel) random search")
    search.add_argument("--env", default="llvm-ic-v0")
    search.add_argument("--benchmark", action="append", help="Benchmark URI (repeatable)")
    search.add_argument("--steps", type=int, default=500)
    search.add_argument("--patience", type=int, default=25)
    search.add_argument("--nproc", type=int, default=1,
                        help="Independent searches to run concurrently (one per benchmark)")
    search.add_argument("--workers", type=int, default=1,
                        help="Vectorized environment pool size per search: the environment "
                             "is fork()ed into N workers that evaluate candidate episodes "
                             "concurrently")
    search.add_argument("--service-url", default=None,
                        help="Attach search environments to a running compiler "
                             "service daemon (see `serve`), e.g. tcp://127.0.0.1:5499")
    search.add_argument("--output", help="Write resulting states to a CSV file")
    search.set_defaults(func=_cmd_random_search)

    train = sub.add_parser(
        "train", help="Train an RL agent on vectorized (auto-reset) rollouts"
    )
    train.add_argument("--env", default="llvm-v0")
    train.add_argument("--agent", choices=["a2c", "ppo", "impala", "apex"], default="ppo")
    train.add_argument("--benchmark", action="append", help="Benchmark URI (repeatable)")
    train.add_argument("--episodes", type=int, default=100)
    train.add_argument("--episode-length", type=int, default=45)
    train.add_argument("--workers", type=int, default=1,
                       help="Vectorized environment pool size collecting rollouts "
                            "(with --actors: pool size inside each actor process)")
    train.add_argument("--backend", choices=["serial", "thread", "process"],
                       default="serial",
                       help="Pool execution backend; 'process' runs each worker in "
                            "its own subprocess, sidestepping the GIL")
    train.add_argument("--actors", type=int, default=0,
                       help="Distributed actor/learner training (apex/impala only): "
                            "N actor processes collect experience into a central "
                            "learner that broadcasts weights back. 0 (default) "
                            "trains single-process via train_agent_vec")
    train.add_argument("--learner-batch", type=int, default=0,
                       help="Learner replay sample size per update (apex only; "
                            "0 keeps the agent default)")
    train.add_argument("--broadcast-interval", type=int, default=8,
                       help="Min experience items between learner weight "
                            "broadcasts (multi-actor async mode)")
    train.add_argument("--service-url", default=None,
                       help="Attach training environments (in every actor "
                            "process) to a running compiler service daemon "
                            "(see `serve`), e.g. tcp://127.0.0.1:5499")
    train.add_argument("--no-auto-reset", action="store_true",
                       help="Collect per-episode lockstep rollouts instead of "
                            "continuous auto-reset rollouts")
    train.add_argument("--checkpoint-dir", default=None,
                       help="Directory for periodic learner checkpoints "
                            "(weights, feature-scaler statistics, episode "
                            "accounting). Distributed mode (--actors) only")
    train.add_argument("--checkpoint-interval", type=int, default=512,
                       help="Experience items learned between periodic "
                            "checkpoints")
    train.add_argument("--resume", action="store_true",
                       help="Resume from the checkpoint in --checkpoint-dir: "
                            "--episodes is the total target; only the "
                            "episodes beyond the checkpoint are run and the "
                            "learning curve concatenates saved + new episodes")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", help="Write the learning curve to a JSON file")
    train.set_defaults(func=_cmd_train)

    replay = sub.add_parser("replay", help="Replay recorded states")
    replay.add_argument("states", help="CSV/JSON file of CompilerEnvStates")
    replay.add_argument("--env", default="llvm-v0")
    replay.add_argument("--reward", default="IrInstructionCount")
    replay.set_defaults(func=_cmd_replay)

    lint = sub.add_parser(
        "lint",
        help="Validate every registered pass over the builtin datasets "
             "(semantic IR verifier + interpreter differential check)",
    )
    lint.add_argument(
        "--dataset",
        action="append",
        default=[],
        help="Dataset(s) to lint (repeatable; default: all builtin datasets)",
    )
    lint.add_argument(
        "--benchmarks-per-dataset",
        type=int,
        default=2,
        help="Benchmarks sampled per dataset (default: 2)",
    )
    lint.add_argument(
        "--passes",
        nargs="*",
        default=[],
        help="Passes to validate (default: every registered pass)",
    )
    lint.add_argument(
        "--no-differential",
        action="store_true",
        help="Skip the interpreter-based differential check",
    )
    lint.add_argument("--quiet", action="store_true", help="Only print the summary")
    lint.set_defaults(func=_cmd_lint)

    validate = sub.add_parser("validate", help="Validate recorded states")
    validate.add_argument("states", help="CSV/JSON file of CompilerEnvStates")
    validate.add_argument("--env", default="llvm-v0")
    validate.add_argument("--reward", default="IrInstructionCount")
    validate.set_defaults(func=_cmd_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
