"""Command-line tools."""

from repro.cli.main import main

__all__ = ["main"]
