"""Simulated loop_tool CUDA loop-nest environment.

Reproduces the paper's third environment: tuning the loop-nest structure of a
point-wise addition on a GPU. The loop tree, the cursor-based action space,
and the FLOPs reward are modelled; the GPU itself is replaced by an
analytical bandwidth/occupancy performance model calibrated to the GP100
numbers quoted in the paper (~6e10 FLOPs peak for this workload).
"""

from repro.loop_tool.ir import LoopTree
from repro.loop_tool.cost import gp100_flops
from repro.loop_tool.env import LoopToolEnv, make_loop_tool_env

__all__ = ["LoopToolEnv", "LoopTree", "gp100_flops", "make_loop_tool_env"]
