"""Analytical GPU performance model for the loop_tool environment.

The paper benchmarks point-wise addition on an NVIDIA GP100 and reports that
a tuned schedule reaches ~73.5% of the theoretical peak of ~6e10 FLOPs
(equivalently ~750 GB/s for two 4-byte reads and one write per FLOP), with a
notable performance drop near 100k threads. This model reproduces those
characteristics:

* the workload is memory-bandwidth bound, so performance saturates once
  enough threads are in flight to hide memory latency;
* too few threads underutilize the memory system (linear ramp);
* a performance cliff appears near 100k threads, where the thread count
  exceeds the number of resident threads the device can schedule and the tail
  effect of an extra partially-filled wave bites;
* very small inner loops waste issue slots, very large inner loops serialize
  the work of each thread;
* measurements carry multiplicative noise, so the reward is nondeterministic.
"""

import math
import random
from typing import Optional

from repro.loop_tool.ir import LoopTree

# GP100-style device model.
PEAK_FLOPS = 6.0e10               # Bandwidth-bound peak for a+b=c on fp32.
MAX_RESIDENT_THREADS = 98_304     # 56 SMs x 2048 resident threads ≈ 114k; the
                                  # schedulable sweet spot lands near 100k.
WARP_SIZE = 32
LATENCY_HIDING_THREADS = 8_192    # Threads needed to saturate memory bandwidth.
# Fraction of the theoretical bandwidth a real kernel can sustain (DRAM
# refresh, ECC, imperfect coalescing). The paper's best tuned schedule reaches
# ~73.5% of theoretical peak; this cap is what bounds it.
ACHIEVABLE_FRACTION = 0.76


def _occupancy_efficiency(threads: int) -> float:
    """Fraction of peak achievable at a given launch width."""
    if threads <= 0:
        return 0.0
    # Ramp up as threads hide memory latency.
    ramp = min(1.0, threads / LATENCY_HIDING_THREADS) ** 0.85
    # Tail/wave effect: just past the resident-thread capacity the last wave
    # is nearly empty, halving throughput; the penalty fades as more full
    # waves amortize it (the "drop near 100k threads" in Fig. 7).
    if threads <= MAX_RESIDENT_THREADS:
        wave_penalty = 1.0
    else:
        waves = threads / MAX_RESIDENT_THREADS
        fractional_tail = waves - math.floor(waves)
        full_waves = math.floor(waves)
        if fractional_tail < 1e-9:
            wave_penalty = 1.0
        else:
            wave_penalty = (full_waves + fractional_tail) / (full_waves + 1.0)
    # Non-multiple-of-warp launches waste lanes.
    warp_alignment = 1.0 - 0.3 * ((threads % WARP_SIZE) > 0)
    return ramp * wave_penalty * warp_alignment


def _inner_loop_efficiency(inner_size: int) -> float:
    """Per-thread work granularity effect."""
    if inner_size <= 0:
        return 0.0
    # Sweet spot around 4-64 elements per thread: enough ILP to keep memory
    # requests in flight, not so much that a single thread serializes.
    ideal = 16.0
    ratio = math.log2(max(1, inner_size)) - math.log2(ideal)
    return math.exp(-0.5 * (ratio / 2.2) ** 2) * 0.35 + 0.65


def gp100_flops(tree: LoopTree, noise: float = 0.02, rng: Optional[random.Random] = None) -> float:
    """One simulated FLOPs measurement of a schedule on the GP100 model."""
    rng = rng or random
    threads = tree.num_threads
    if threads <= 1:
        # Fully serial schedule: a single CUDA thread streams the whole array.
        base = PEAK_FLOPS * 2.5e-5 * _inner_loop_efficiency(tree.inner_size)
    else:
        work_per_thread = max(1, tree.total_iterations // max(1, threads))
        base = (
            PEAK_FLOPS
            * ACHIEVABLE_FRACTION
            * _occupancy_efficiency(threads)
            * _inner_loop_efficiency(work_per_thread)
        )
        # Oversubscription: launching far more iterations than elements wastes
        # bandwidth on redundant work.
        oversubscription = tree.total_iterations / max(1, tree.n)
        base /= max(1.0, oversubscription)
    measured = base * max(0.5, rng.gauss(1.0, noise))
    return float(measured)


def theoretical_peak() -> float:
    """The device's theoretical peak for this workload."""
    return PEAK_FLOPS
