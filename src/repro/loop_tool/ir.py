"""The loop-tree representation used by the loop_tool environment.

A point-wise operation over ``N`` elements is expressed as a nest of loops
whose sizes multiply to at least ``N`` (the innermost levels absorb any tail
iterations). Each loop can be annotated as *threaded* (scheduled across CUDA
threads) or not, and loops can be split to deepen the hierarchy — exactly the
four degrees of freedom the paper describes (order, nesting, reuse,
parallelism) specialized to the point-wise addition benchmark it evaluates.
"""

from dataclasses import dataclass, field
from typing import List


@dataclass
class LoopNode:
    """One loop level: its size and whether it runs across CUDA threads."""

    size: int
    threaded: bool = False

    def __str__(self) -> str:
        return f"for {self.size}{' [thread]' if self.threaded else ''}"


@dataclass
class LoopTree:
    """A loop nest computing a point-wise binary operation of ``n`` elements."""

    n: int = 1024 * 1024
    loops: List[LoopNode] = field(default_factory=list)

    def __post_init__(self):
        if not self.loops:
            # The initial schedule is a single outer loop over all elements,
            # matching loop_tool's default lowering (Listing 4 in the paper).
            self.loops = [LoopNode(size=self.n)]

    # -- structural queries ------------------------------------------------------

    @property
    def inner_size(self) -> int:
        """Iterations of the innermost loop (work per thread when threaded)."""
        return self.loops[-1].size

    @property
    def total_iterations(self) -> int:
        total = 1
        for loop in self.loops:
            total *= max(1, loop.size)
        return total

    @property
    def num_threads(self) -> int:
        """Total CUDA threads the schedule launches (product of threaded sizes)."""
        threads = 1
        for loop in self.loops:
            if loop.threaded:
                threads *= max(1, loop.size)
        return threads

    def depth(self) -> int:
        return len(self.loops)

    # -- transformations ----------------------------------------------------------

    def resize(self, index: int, new_size: int) -> None:
        """Change the size of one loop, keeping total iterations >= n.

        As in loop_tool, growing an inner loop shrinks its parent to
        compensate (tail iterations are handled implicitly by the model).
        """
        new_size = max(1, int(new_size))
        if not 0 <= index < len(self.loops):
            raise IndexError(index)
        self.loops[index].size = new_size
        self._rebalance(index)

    def increase_size(self, index: int, amount: int = 1) -> None:
        self.resize(index, self.loops[index].size + amount)

    def toggle_threaded(self, index: int) -> None:
        if not 0 <= index < len(self.loops):
            raise IndexError(index)
        self.loops[index].threaded = not self.loops[index].threaded

    def split(self, index: int, factor: int = 2) -> None:
        """Split one loop into two nested loops (outer x factor)."""
        if not 0 <= index < len(self.loops):
            raise IndexError(index)
        factor = max(2, int(factor))
        original = self.loops[index]
        outer_size = max(1, (original.size + factor - 1) // factor)
        self.loops[index] = LoopNode(size=outer_size, threaded=original.threaded)
        self.loops.insert(index + 1, LoopNode(size=factor, threaded=False))

    def _rebalance(self, changed_index: int) -> None:
        """Adjust the outermost loop so the nest still covers all n elements."""
        other = 1
        for i, loop in enumerate(self.loops):
            if i != 0:
                other *= max(1, loop.size)
        if changed_index == 0:
            return
        required_outer = max(1, -(-self.n // other))  # ceil division
        self.loops[0].size = required_outer

    # -- rendering ----------------------------------------------------------------

    def dump(self) -> str:
        """The textual loop-tree observation (Listing 4 of the paper)."""
        lines = []
        indent = ""
        for i, loop in enumerate(self.loops):
            suffix = " [thread]" if loop.threaded else ""
            lines.append(f"{indent}for i{i} in {loop.size} : L{i}{suffix}")
            indent += "  "
        lines.append(f"{indent}%0[i] <- read()")
        lines.append(f"{indent}%1[i] <- read()")
        lines.append(f"{indent}%2[i] <- add(%0, %1)")
        lines.append(f"{indent}%3[i] <- write(%2)")
        return "\n".join(lines)

    def copy(self) -> "LoopTree":
        return LoopTree(n=self.n, loops=[LoopNode(l.size, l.threaded) for l in self.loops])
