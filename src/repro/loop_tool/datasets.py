"""Benchmark datasets for the loop_tool environment.

A loop_tool benchmark is a problem size: the number of elements of the
point-wise operation. The paper sweeps a variety of problem sizes; the
dataset exposes the power-of-two sizes from 2^10 to 2^26.
"""

from typing import Iterator

from repro.core.datasets import Benchmark, Dataset, Datasets
from repro.core.datasets.uri import BenchmarkUri

SIZES = [2**exp for exp in range(10, 27)]


class LoopToolDataset(Dataset):
    """Point-wise addition workloads addressed by element count."""

    def __init__(self):
        super().__init__(
            name="benchmark://loop_tool-v0",
            description="Point-wise addition loop nests of varying size (CUDA)",
            license="MIT",
            benchmark_count=len(SIZES),
        )

    def benchmark_uris(self) -> Iterator[str]:
        for size in SIZES:
            yield f"{self.name}/{size}"

    def benchmark_from_parsed_uri(self, uri: BenchmarkUri) -> Benchmark:
        if not uri.path.isdigit():
            raise LookupError(f"loop_tool benchmarks are addressed by element count: {uri}")
        size = int(uri.path)
        if size < 1:
            raise LookupError(f"Invalid problem size: {size}")
        return Benchmark(uri=str(uri), program={"size": size})


def make_loop_tool_datasets() -> Datasets:
    datasets = Datasets()
    datasets.add(LoopToolDataset())
    return datasets
