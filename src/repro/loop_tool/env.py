"""The loop_tool CUDA loop-nest environment."""

from typing import List, Optional, Union

from repro.core.datasets import Benchmark, Datasets
from repro.core.env import CompilerEnv
from repro.core.service.connection import ConnectionOpts
from repro.core.spaces.reward import Reward
from repro.loop_tool.datasets import make_loop_tool_datasets
from repro.loop_tool.service import LoopToolCompilationSession

DEFAULT_BENCHMARK = "benchmark://loop_tool-v0/1048576"


class FlopsReward(Reward):
    """Reward = increase in measured FLOPs since the previous step.

    Unlike the size rewards, *higher* is better, so the reward is the change
    in the positive direction. The signal is both platform dependent and
    nondeterministic (benchmarking noise), as in the paper.
    """

    def __init__(self, name: str = "flops"):
        super().__init__(
            name=name,
            observation_spaces=["flops"],
            default_value=0,
            default_negates_returns=True,
            deterministic=False,
            platform_dependent=True,
        )
        self.previous: Optional[float] = None

    def reset(self, benchmark: str, observation_view) -> None:
        del benchmark, observation_view
        self.previous = None

    def update(self, actions, observations, observation_view) -> float:
        del actions, observation_view
        value = float(observations[0])
        if self.previous is None:
            self.previous = value
            return 0.0
        reward = value - self.previous
        self.previous = value
        return reward


class AbsoluteFlopsReward(Reward):
    """Reward = the measured FLOPs of the current schedule (not a delta)."""

    def __init__(self, name: str = "flops_abs"):
        super().__init__(
            name=name,
            observation_spaces=["flops"],
            default_value=0,
            deterministic=False,
            platform_dependent=True,
        )

    def update(self, actions, observations, observation_view) -> float:
        del actions, observation_view
        return float(observations[0])


def make_loop_tool_rewards() -> List[Reward]:
    return [FlopsReward(), AbsoluteFlopsReward()]


class LoopToolEnv(CompilerEnv):
    """Cursor-based loop-nest tuning for point-wise addition on a simulated GPU."""

    def __init__(
        self,
        benchmark: Optional[Union[str, Benchmark]] = None,
        observation_space: Optional[str] = None,
        reward_space: Optional[str] = None,
        datasets: Optional[Datasets] = None,
        connection_opts: Optional[ConnectionOpts] = None,
        **kwargs,
    ):
        super().__init__(
            session_type=LoopToolCompilationSession,
            datasets=datasets or make_loop_tool_datasets(),
            rewards=make_loop_tool_rewards(),
            benchmark=benchmark or DEFAULT_BENCHMARK,
            observation_space=observation_space,
            reward_space=reward_space,
            connection_opts=connection_opts,
            **kwargs,
        )

    @property
    def flops(self) -> float:
        """One FLOPs measurement of the current schedule."""
        return self.observation["flops"]

    @property
    def loop_tree(self) -> str:
        """The textual loop-tree dump of the current schedule."""
        return self.observation["loop_tree"]


def make_loop_tool_env(**kwargs) -> LoopToolEnv:
    """Entry point used by the environment registry."""
    return LoopToolEnv(**kwargs)
