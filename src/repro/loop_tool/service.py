"""The loop_tool CompilationSession: cursor-based loop-nest manipulation.

The action space matches the paper's description: a cursor points at one loop
in the hierarchy and has a mode. ``toggle_mode`` switches between *moving* the
cursor (up/down walk the loop nest) and *modifying* the current loop (up
increases its size, handled by resizing the parent to compensate). Any loop
can be toggled to run across CUDA threads, and an extended action splits the
current loop to deepen the hierarchy.
"""

import random
from typing import List, Optional, Tuple

from repro.core.datasets.benchmark import Benchmark
from repro.core.service.compilation_session import CompilationSession
from repro.core.spaces import NamedDiscrete, ObservationSpaceSpec, Scalar, SequenceSpace
from repro.core.spaces.space import Space
from repro.loop_tool.cost import gp100_flops
from repro.loop_tool.ir import LoopTree

# The basic cursor action space described in the paper, plus the extended
# "split" action that allows deepening the loop hierarchy.
ACTIONS = ["toggle_mode", "up", "down", "toggle_thread", "split"]
MODES = ["move", "modify"]


class LoopToolCompilationSession(CompilationSession):
    """Cursor-driven scheduling of a point-wise addition loop nest."""

    compiler_version = "repro-loop_tool 0.1 (simulated GP100 backend)"
    action_spaces: List[Space] = [NamedDiscrete(ACTIONS, name="Cursor")]
    observation_spaces: List[ObservationSpaceSpec] = [
        ObservationSpaceSpec(
            "action_state", 0,
            SequenceSpace(size_range=(3, 3), dtype=int, name="action_state"),
            deterministic=True, platform_dependent=False, default_value=[0, 0, 0],
        ),
        ObservationSpaceSpec(
            "loop_tree", 1, SequenceSpace(size_range=(0, None), dtype=str, name="loop_tree"),
            deterministic=True, platform_dependent=False, default_value="",
        ),
        ObservationSpaceSpec(
            "flops", 2, Scalar(min=0, max=None, dtype=float, name="flops"),
            deterministic=False, platform_dependent=True, default_value=0.0,
        ),
    ]

    def __init__(self, working_dir: str, action_space: Space, benchmark: Benchmark):
        super().__init__(working_dir, action_space, benchmark)
        payload = benchmark.program or {}
        self.tree = LoopTree(n=int(payload.get("size", 1024 * 1024)))
        self.cursor = 0
        self.mode = 0  # 0 = move, 1 = modify
        self._rng = random.Random(0xD00D)

    def apply_action(self, action) -> Tuple[bool, Optional[Space], bool]:
        index = int(action)
        if not 0 <= index < len(ACTIONS):
            raise ValueError(f"Action out of range: {index}")
        name = ACTIONS[index]
        changed = True
        if name == "toggle_mode":
            self.mode = 1 - self.mode
        elif name == "up":
            if self.mode == 0:
                changed = self.cursor > 0
                self.cursor = max(0, self.cursor - 1)
            else:
                self.tree.increase_size(self.cursor, 1)
        elif name == "down":
            if self.mode == 0:
                changed = self.cursor < self.tree.depth() - 1
                self.cursor = min(self.tree.depth() - 1, self.cursor + 1)
            else:
                size = self.tree.loops[self.cursor].size
                changed = size > 1
                self.tree.resize(self.cursor, size - 1)
        elif name == "toggle_thread":
            self.tree.toggle_threaded(self.cursor)
        elif name == "split":
            self.tree.split(self.cursor)
        return False, None, not changed

    def get_observation(self, observation_space: ObservationSpaceSpec):
        space_id = observation_space.id
        if space_id == "action_state":
            return [self.cursor, self.mode, self.tree.loops[self.cursor].size]
        if space_id == "loop_tree":
            return self.tree.dump()
        if space_id == "flops":
            return gp100_flops(self.tree, rng=self._rng)
        raise LookupError(f"Unknown observation space: {space_id!r}")

    def fork(self) -> "LoopToolCompilationSession":
        forked = LoopToolCompilationSession(self.working_dir, self.action_space, self.benchmark)
        forked.tree = self.tree.copy()
        forked.cursor = self.cursor
        forked.mode = self.mode
        return forked
