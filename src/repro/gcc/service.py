"""The GCC CompilationSession: command-line flag tuning over the simulated GCC.

Two interchangeable action spaces are exposed, as in the paper:

1. ``Categorical`` (default): a flat list of discrete actions. Options with
   fewer than ten choices get one direct-set action per choice; options with
   larger cardinalities get eight actions that add or subtract 1, 10, 100, or
   1000 from the current choice index.
2. ``Choices``: an action is a full configuration — a list of integers, one
   choice index per option.
"""

import hashlib
import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.datasets.benchmark import Benchmark
from repro.core.service.compilation_session import CompilationSession
from repro.core.spaces import NamedDiscrete, ObservationSpaceSpec, Scalar, SequenceSpace
from repro.core.spaces.space import Space
from repro.gcc.compiler import SimulatedGcc
from repro.gcc.spec import GccSpec

# Threshold below which an option gets direct-set actions; above it, the
# option is manipulated by +-1/10/100/1000 deltas.
DIRECT_SET_THRESHOLD = 10
DELTA_ACTIONS = [1, 10, 100, 1000, -1, -10, -100, -1000]


class GccChoicesSpace(Space):
    """The space of full configuration vectors (one integer per option)."""

    def __init__(self, spec: GccSpec, name: str = "Choices"):
        super().__init__(name=name)
        self.spec = spec

    def sample(self) -> List[int]:
        return [self.rng.randrange(len(option)) for option in self.spec.options]

    def contains(self, value) -> bool:
        if not hasattr(value, "__len__") or len(value) != len(self.spec.options):
            return False
        try:
            return all(0 <= int(v) < len(option) for v, option in zip(value, self.spec.options))
        except (TypeError, ValueError):
            return False

    def __repr__(self) -> str:
        return f"GccChoicesSpace(n_options={len(self.spec.options)})"


def _build_categorical_actions(spec: GccSpec) -> Tuple[NamedDiscrete, List[Callable]]:
    """Build the flat categorical action space and the per-action appliers.

    Each applier is a function ``(choices) -> None`` mutating the choice
    vector in place.
    """
    names: List[str] = []
    appliers: List[Callable[[List[int]], None]] = []
    for option_index, option in enumerate(spec.options):
        cardinality = len(option)
        if cardinality < DIRECT_SET_THRESHOLD:
            for choice in range(cardinality):
                label = option[choice] or f"{option.name}=<default>"
                names.append(f"set {label}")

                def apply(choices, index=option_index, value=choice):
                    choices[index] = value

                appliers.append(apply)
        else:
            for delta in DELTA_ACTIONS:
                names.append(f"{option.name} {'+' if delta > 0 else ''}{delta}")

                def apply(choices, index=option_index, step=delta, limit=cardinality):
                    choices[index] = min(max(choices[index] + step, 0), limit - 1)

                appliers.append(apply)
    return NamedDiscrete(names, name="Categorical"), appliers


def make_gcc_session_type(gcc_version: str = "11.2.0"):
    """Create a GCC compilation-session class bound to one compiler version.

    The paper selects the compiler by a string specifier (a docker image name
    or local path); here the specifier selects the version of the simulated
    option space.
    """
    spec = GccSpec(gcc_version)
    categorical_space, appliers = _build_categorical_actions(spec)
    choices_space = GccChoicesSpace(spec)

    observation_spaces = [
        ObservationSpaceSpec(
            "source", 0, SequenceSpace(size_range=(0, None), dtype=str, name="source"),
            deterministic=True, platform_dependent=False, default_value="",
        ),
        ObservationSpaceSpec(
            "rtl", 1, SequenceSpace(size_range=(0, None), dtype=str, name="rtl"),
            deterministic=True, platform_dependent=True, default_value="",
        ),
        ObservationSpaceSpec(
            "asm", 2, SequenceSpace(size_range=(0, None), dtype=str, name="asm"),
            deterministic=True, platform_dependent=True, default_value="",
        ),
        ObservationSpaceSpec(
            "asm_size", 3, Scalar(min=0, max=None, dtype=int, name="asm_size"),
            deterministic=True, platform_dependent=True, default_value=0,
        ),
        ObservationSpaceSpec(
            "asm_hash", 4, SequenceSpace(size_range=(40, 40), dtype=str, name="asm_hash"),
            deterministic=True, platform_dependent=True, default_value="",
        ),
        ObservationSpaceSpec(
            "obj_size", 5, Scalar(min=0, max=None, dtype=int, name="obj_size"),
            deterministic=True, platform_dependent=True, default_value=0,
        ),
        ObservationSpaceSpec(
            "instruction_counts", 6,
            SequenceSpace(size_range=(0, None), dtype=str, name="instruction_counts"),
            deterministic=True, platform_dependent=True, default_value="{}",
        ),
        ObservationSpaceSpec(
            "choices", 7, SequenceSpace(size_range=(0, None), dtype=int, name="choices"),
            deterministic=True, platform_dependent=False, default_value=[],
        ),
        ObservationSpaceSpec(
            "command_line", 8, SequenceSpace(size_range=(0, None), dtype=str, name="command_line"),
            deterministic=True, platform_dependent=False, default_value="",
        ),
    ]

    class GccCompilationSession(CompilationSession):
        """Flag tuning for one benchmark against the simulated GCC."""

        def __init__(self, working_dir: str, action_space: Space, benchmark: Benchmark):
            super().__init__(working_dir, action_space, benchmark)
            payload = benchmark.program or {}
            self.benchmark_id = payload.get("benchmark_id", str(benchmark.uri))
            self.gcc = SimulatedGcc(spec)
            self.choices: List[int] = spec.default_choices()
            self._appliers = appliers

        def apply_action(self, action) -> Tuple[bool, Optional[Space], bool]:
            before = list(self.choices)
            if self.action_space is choices_space or isinstance(action, (list, tuple)):
                values = list(action)
                if len(values) != len(spec.options):
                    raise ValueError(
                        f"Choices action must have {len(spec.options)} entries, got {len(values)}"
                    )
                self.choices = [
                    min(max(int(value), 0), len(option) - 1)
                    for value, option in zip(values, spec.options)
                ]
            else:
                index = int(action)
                if not 0 <= index < len(self._appliers):
                    raise ValueError(f"Action out of range: {index}")
                self._appliers[index](self.choices)
            return False, None, self.choices == before

        def get_observation(self, observation_space: ObservationSpaceSpec):
            space_id = observation_space.id
            if space_id == "source":
                return f"/* {self.benchmark_id} (synthetic source placeholder) */"
            if space_id == "rtl":
                return self.gcc.rtl_text(self.benchmark_id, self.choices)
            if space_id == "asm":
                return self.gcc.asm_text(self.benchmark_id, self.choices)
            if space_id == "asm_size":
                return self.gcc.asm_size(self.benchmark_id, self.choices)
            if space_id == "asm_hash":
                return hashlib.sha1(
                    self.gcc.asm_text(self.benchmark_id, self.choices).encode("utf-8")
                ).hexdigest()
            if space_id == "obj_size":
                return self.gcc.obj_size(self.benchmark_id, self.choices)
            if space_id == "instruction_counts":
                return json.dumps(self.gcc.instruction_counts(self.benchmark_id, self.choices))
            if space_id == "choices":
                return list(self.choices)
            if space_id == "command_line":
                return spec.choices_to_commandline(self.choices)
            raise LookupError(f"Unknown observation space: {space_id!r}")

        def fork(self) -> "GccCompilationSession":
            forked = GccCompilationSession(self.working_dir, self.action_space, self.benchmark)
            forked.choices = list(self.choices)
            return forked

        def handle_session_parameter(self, key: str, value: str) -> Optional[str]:
            if key == "gcc.get_version":
                return gcc_version
            if key == "gcc.set_choices":
                self.choices = [int(v) for v in value.split(",")]
                return value
            if key == "gcc.get_choices":
                return ",".join(str(v) for v in self.choices)
            return None

    # Class bodies cannot see enclosing-function locals, so the class-level
    # metadata is attached after the definition.
    GccCompilationSession.compiler_version = f"repro-gcc {gcc_version} (simulated)"
    GccCompilationSession.action_spaces = [categorical_space, choices_space]
    GccCompilationSession.observation_spaces = list(observation_spaces)
    GccCompilationSession.gcc_spec = spec
    GccCompilationSession.__name__ = f"GccCompilationSession_{gcc_version.replace('.', '_')}"
    return GccCompilationSession


# The default session type (GCC 11.2.0), matching the paper's experiments.
GccCompilationSession = make_gcc_session_type("11.2.0")
