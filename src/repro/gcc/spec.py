"""The GCC optimization-option space.

The paper extracts the option space automatically from the ``--help``
documentation of whichever GCC version is used: for GCC 11.2.0 this yields
502 options — the ``-O<n>`` level, 242 ``-f`` flags (each absent, present, or
negated, some taking integer or enumerated arguments), and 259 ``--param``
options — for a configuration space of roughly 10^4461. Earlier versions
report fewer parameters (about 10^430 for GCC 5). This module generates a
specification with the same shape deterministically, keyed by version string.
"""

import hashlib
import math
from typing import List, Optional, Sequence, Union

# Real GCC optimization flag stems used to give the generated flags realistic
# names; the list cycles with numeric suffixes once exhausted.
_FLAG_STEMS = [
    "aggressive-loop-optimizations", "align-functions", "align-jumps", "align-labels",
    "align-loops", "associative-math", "asynchronous-unwind-tables", "auto-inc-dec",
    "branch-count-reg", "branch-probabilities", "caller-saves", "code-hoisting",
    "combine-stack-adjustments", "compare-elim", "conserve-stack", "cprop-registers",
    "crossjumping", "cse-follow-jumps", "cx-fortran-rules", "cx-limited-range",
    "dce", "defer-pop", "delayed-branch", "delete-dead-exceptions", "delete-null-pointer-checks",
    "devirtualize", "devirtualize-speculatively", "dse", "early-inlining", "expensive-optimizations",
    "finite-loops", "finite-math-only", "float-store", "forward-propagate", "gcse",
    "gcse-after-reload", "gcse-las", "gcse-lm", "gcse-sm", "guess-branch-probability",
    "hoist-adjacent-loads", "if-conversion", "if-conversion2", "indirect-inlining",
    "inline-atomics", "inline-functions", "inline-functions-called-once", "inline-small-functions",
    "ipa-bit-cp", "ipa-cp", "ipa-cp-clone", "ipa-icf", "ipa-icf-functions", "ipa-icf-variables",
    "ipa-modref", "ipa-profile", "ipa-pta", "ipa-pure-const", "ipa-ra", "ipa-reference",
    "ipa-reference-addressable", "ipa-sra", "ipa-stack-alignment", "ipa-strict-aliasing",
    "ipa-vrp", "ira-hoist-pressure", "ira-loop-pressure", "ira-share-save-slots",
    "ira-share-spill-slots", "isolate-erroneous-paths-attribute", "isolate-erroneous-paths-dereference",
    "ivopts", "jump-tables", "keep-gc-roots-live", "lifetime-dse", "limit-function-alignment",
    "live-range-shrinkage", "loop-interchange", "loop-nest-optimize", "loop-parallelize-all",
    "loop-unroll-and-jam", "lra-remat", "math-errno", "modulo-sched", "modulo-sched-allow-regmoves",
    "move-loop-invariants", "move-loop-stores", "non-call-exceptions", "nothrow-opt",
    "omit-frame-pointer", "opt-info", "optimize-sibling-calls", "optimize-strlen",
    "pack-struct", "partial-inlining", "peel-loops", "peephole", "peephole2", "plt",
    "predictive-commoning", "prefetch-loop-arrays", "printf-return-value", "profile-partial-training",
    "profile-reorder-functions", "profile-use", "profile-values", "reciprocal-math",
    "ree", "rename-registers", "reorder-blocks", "reorder-blocks-and-partition",
    "reorder-functions", "rerun-cse-after-loop", "reschedule-modulo-scheduled-loops",
    "rounding-math", "rtti", "sched-critical-path-heuristic", "sched-dep-count-heuristic",
    "sched-group-heuristic", "sched-interblock", "sched-last-insn-heuristic", "sched-pressure",
    "sched-rank-heuristic", "sched-spec", "sched-spec-insn-heuristic", "sched-spec-load",
    "sched-spec-load-dangerous", "sched-stalled-insns", "sched-stalled-insns-dep",
    "sched2-use-superblocks", "schedule-fusion", "schedule-insns", "schedule-insns2",
    "section-anchors", "sel-sched-pipelining", "sel-sched-pipelining-outer-loops",
    "sel-sched-reschedule-pipelined", "selective-scheduling", "selective-scheduling2",
    "short-enums", "short-wchar", "shrink-wrap", "shrink-wrap-separate", "signaling-nans",
    "signed-zeros", "single-precision-constant", "split-ivs-in-unroller", "split-loops",
    "split-paths", "split-wide-types", "split-wide-types-early", "ssa-backprop", "ssa-phiopt",
    "stack-clash-protection", "stack-protector", "stack-protector-all", "stack-protector-strong",
    "stdarg-opt", "store-merging", "strict-aliasing", "strict-enums", "thread-jumps",
    "threadsafe-statics", "toplevel-reorder", "tracer", "trapping-math", "trapv",
    "tree-bit-ccp", "tree-builtin-call-dce", "tree-ccp", "tree-ch", "tree-coalesce-vars",
    "tree-copy-prop", "tree-cselim", "tree-dce", "tree-dominator-opts", "tree-dse",
    "tree-forwprop", "tree-fre", "tree-loop-distribute-patterns", "tree-loop-distribution",
    "tree-loop-if-convert", "tree-loop-im", "tree-loop-ivcanon", "tree-loop-optimize",
    "tree-loop-vectorize", "tree-lrs", "tree-partial-pre", "tree-phiprop", "tree-pre",
    "tree-pta", "tree-reassoc", "tree-scev-cprop", "tree-sink", "tree-slp-vectorize",
    "tree-slsr", "tree-sra", "tree-switch-conversion", "tree-tail-merge", "tree-ter",
    "tree-vectorize", "tree-vrp", "unconstrained-commons", "unit-at-a-time", "unroll-all-loops",
    "unroll-loops", "unsafe-math-optimizations", "unswitch-loops", "unwind-tables",
    "var-tracking", "var-tracking-assignments", "var-tracking-uninit", "variable-expansion-in-unroller",
    "vect-cost-model", "version-loops-for-strides", "vpt", "web", "whole-program", "wrapv",
]

_PARAM_STEMS = [
    "align-loop-iterations", "align-threshold", "asan-globals", "asan-instrument-allocas",
    "avg-loop-niter", "builtin-expect-probability", "case-values-threshold", "comdat-sharing-probability",
    "early-inlining-insns", "fsm-scale-path-stmts", "gcse-cost-distance-ratio", "ggc-min-expand",
    "ggc-min-heapsize", "hot-bb-count-fraction", "hot-bb-frequency-fraction", "inline-heuristics-hint-percent",
    "inline-min-speedup", "inline-unit-growth", "ipa-cp-eval-threshold", "ipa-cp-loop-hint-bonus",
    "ipa-cp-unit-growth", "ipa-cp-value-list-size", "ipa-max-agg-items", "ipa-sra-ptr-growth-factor",
    "ira-max-conflict-table-size", "ira-max-loops-num", "iv-consider-all-candidates-bound",
    "iv-max-considered-uses", "jump-table-max-growth-ratio-for-size", "l1-cache-line-size",
    "l1-cache-size", "l2-cache-size", "large-function-growth", "large-function-insns",
    "large-stack-frame", "large-stack-frame-growth", "large-unit-insns", "lim-expensive",
    "loop-block-tile-size", "loop-interchange-max-num-stmts", "loop-interchange-stride-ratio",
    "loop-invariant-max-bbs-in-loop", "loop-max-datarefs-for-datadeps", "loop-versioning-max-inner-insns",
    "loop-versioning-max-outer-insns", "max-average-unrolled-insns", "max-completely-peel-loop-nest-depth",
    "max-completely-peel-times", "max-completely-peeled-insns", "max-crossjump-edges",
    "max-cse-insns", "max-cse-path-length", "max-cselib-memory-locations", "max-delay-slot-insn-search",
    "max-delay-slot-live-search", "max-dse-active-local-stores", "max-early-inliner-iterations",
    "max-fields-for-field-sensitive", "max-gcse-insertion-ratio", "max-gcse-memory",
    "max-goto-duplication-insns", "max-grow-copy-bb-insns", "max-hoist-depth",
    "max-inline-insns-auto", "max-inline-insns-recursive", "max-inline-insns-recursive-auto",
    "max-inline-insns-single", "max-inline-insns-size", "max-inline-insns-small",
    "max-inline-recursive-depth", "max-inline-recursive-depth-auto", "max-isl-operations",
    "max-iterations-computation-cost", "max-iterations-to-track", "max-jump-thread-duplication-stmts",
    "max-last-value-rtl", "max-loop-header-insns", "max-modulo-backtrack-attempts",
    "max-once-peeled-insns", "max-partial-antic-length", "max-peel-branches", "max-peel-times",
    "max-peeled-insns", "max-pending-list-length", "max-pipeline-region-blocks",
    "max-pipeline-region-insns", "max-pow-sqrt-depth", "max-predicted-iterations",
    "max-reload-search-insns", "max-rtl-if-conversion-insns", "max-sched-extend-regions-iters",
    "max-sched-insn-conflict-delay", "max-sched-ready-insns", "max-sched-region-blocks",
    "max-sched-region-insns", "max-slsr-cand-scan", "max-speculative-devirt-maydefs",
    "max-stores-to-merge", "max-stores-to-sink", "max-tail-merge-comparisons",
    "max-tail-merge-iterations", "max-tracked-strlens", "max-tree-if-conversion-phi-args",
    "max-unroll-times", "max-unrolled-insns", "max-unswitch-insns", "max-unswitch-level",
    "max-variable-expansions-in-unroller", "max-vartrack-expr-depth", "max-vartrack-size",
    "min-crossjump-insns", "min-inline-recursive-probability", "min-insn-to-prefetch-ratio",
    "min-loop-cond-split-prob", "min-size-for-stack-sharing", "min-spec-prob", "min-vect-loop-bound",
    "modref-max-accesses", "modref-max-bases", "modref-max-depth", "modref-max-escape-points",
    "modref-max-refs", "modref-max-tests", "parloops-chunk-size", "parloops-min-per-thread",
    "partial-inlining-entry-probability", "predictable-branch-outcome", "prefetch-dynamic-strides",
    "prefetch-latency", "prefetch-min-insn-to-mem-ratio", "prefetch-minimum-stride",
    "profile-func-internal-id", "ranger-logical-depth", "rpo-vn-max-loop-depth",
    "sccvn-max-alias-queries-per-access", "scev-max-expr-complexity", "scev-max-expr-size",
    "sched-autopref-queue-depth", "sched-mem-true-dep-cost", "sched-pressure-algorithm",
    "sched-spec-prob-cutoff", "sched-state-edge-prob-cutoff", "selsched-insns-to-rename",
    "selsched-max-lookahead", "selsched-max-sched-times", "simultaneous-prefetches",
    "sink-frequency-threshold", "sms-dfa-history", "sms-loop-average-count-threshold",
    "sms-max-ii-factor", "sms-min-sc", "sra-max-scalarization-size-Osize",
    "sra-max-scalarization-size-Ospeed", "ssa-name-def-chain-limit", "ssp-buffer-size",
    "stack-clash-protection-guard-size", "stack-clash-protection-probe-interval",
    "store-merging-allow-unaligned", "store-merging-max-size", "switch-conversion-max-branch-ratio",
    "tm-max-aggregate-size", "tracer-dynamic-coverage", "tracer-dynamic-coverage-feedback",
    "tracer-max-code-growth", "tracer-min-branch-probability", "tracer-min-branch-probability-feedback",
    "tracer-min-branch-ratio", "tree-reassoc-width", "uninit-control-dep-attempts",
    "uninlined-function-insns", "uninlined-function-time", "uninlined-thunk-insns",
    "uninlined-thunk-time", "unlikely-bb-count-fraction", "unroll-jam-max-unroll",
    "unroll-jam-min-percent", "use-after-scope-direct-emission-threshold", "vect-epilogues-nomask",
    "vect-induction-float", "vect-inner-loop-cost-factor", "vect-max-peeling-for-alignment",
    "vect-max-version-for-alias-checks", "vect-max-version-for-alignment-checks",
    "vect-partial-vector-usage", "vrp1-mode", "vrp2-mode",
]


def _stable_int(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "little")


class Option:
    """One tunable compiler option with a finite list of choices.

    The integer *choice index* 0 always means "not specified" (use the
    compiler default); higher indices select concrete settings.
    """

    name: str

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, choice: int) -> str:
        """Render a choice index as the command-line text ('' for default)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {len(self)} choices)"


class OLevelOption(Option):
    """The ``-O<n>`` optimization level: unspecified or one of six levels."""

    LEVELS = ["-O0", "-O1", "-O2", "-O3", "-Ofast", "-Og", "-Os"]

    def __init__(self):
        self.name = "-O"

    def __len__(self) -> int:
        return len(self.LEVELS) + 1

    def __getitem__(self, choice: int) -> str:
        if choice == 0:
            return ""
        return self.LEVELS[choice - 1]


class FlagOption(Option):
    """An ``-f<name>`` flag: absent, enabled, negated, or (for flags taking an
    argument) one of a small set of argument values."""

    def __init__(self, name: str, arg_values: Optional[Sequence[Union[int, str]]] = None):
        self.name = f"-f{name}"
        self.stem = name
        self.arg_values = list(arg_values or [])

    def __len__(self) -> int:
        # absent | -fX | -fno-X | -fX=<v> for each argument value.
        return 3 + len(self.arg_values)

    def __getitem__(self, choice: int) -> str:
        if choice == 0:
            return ""
        if choice == 1:
            return f"-f{self.stem}"
        if choice == 2:
            return f"-fno-{self.stem}"
        return f"-f{self.stem}={self.arg_values[choice - 3]}"


class ParamOption(Option):
    """A ``--param <name>=<value>`` option with an integer or enumerated range."""

    def __init__(self, name: str, max_value: int, enum_values: Optional[Sequence[str]] = None):
        self.name = f"--param={name}"
        self.stem = name
        self.enum_values = list(enum_values or [])
        self.max_value = max_value

    def __len__(self) -> int:
        if self.enum_values:
            return 1 + len(self.enum_values)
        return 1 + self.max_value + 1  # default | 0..max_value

    def __getitem__(self, choice: int) -> str:
        if choice == 0:
            return ""
        if self.enum_values:
            return f"--param={self.stem}={self.enum_values[choice - 1]}"
        return f"--param={self.stem}={choice - 1}"


class GccSpec:
    """The option space of one GCC version."""

    def __init__(self, gcc_version: str = "11.2.0"):
        self.gcc_version = gcc_version
        self.options: List[Option] = self._build(gcc_version)

    @staticmethod
    def _version_tuple(version: str) -> tuple:
        return tuple(int(part) for part in version.split(".") if part.isdigit())

    def _build(self, version: str) -> List[Option]:
        major = self._version_tuple(version)[0] if self._version_tuple(version) else 11
        options: List[Option] = [OLevelOption()]

        # -f flags: 242 for modern GCC, fewer for older versions.
        num_flags = 242 if major >= 8 else 180
        for index in range(num_flags):
            stem = (
                _FLAG_STEMS[index]
                if index < len(_FLAG_STEMS)
                else f"{_FLAG_STEMS[index % len(_FLAG_STEMS)]}{index // len(_FLAG_STEMS) + 2}"
            )
            digest = _stable_int(f"flag/{stem}")
            arg_values: Optional[List[Union[int, str]]] = None
            if digest % 10 == 0:
                # ~10% of flags take a small enumerated/integer argument.
                arg_values = [1, 2, 4, 8][: 1 + digest % 4]
            options.append(FlagOption(stem, arg_values))

        # --param options: 259 for GCC >= 10 (well documented ranges), far
        # fewer reported by the help text of older versions.
        num_params = 259 if major >= 10 else (120 if major >= 8 else 25)
        for index in range(num_params):
            stem = (
                _PARAM_STEMS[index]
                if index < len(_PARAM_STEMS)
                else f"{_PARAM_STEMS[index % len(_PARAM_STEMS)]}-{index // len(_PARAM_STEMS) + 2}"
            )
            digest = _stable_int(f"param/{stem}")
            if digest % 17 == 0:
                options.append(ParamOption(stem, max_value=0, enum_values=["on", "off", "cheap", "dynamic"]))
            else:
                # Most parameters accept very wide numeric ranges (the source
                # of the ~10^4461 configuration count the paper quotes for
                # GCC 11.2); a minority are bounded 31-bit counters.
                max_value = 2_147_483_647 if digest % 9 == 0 else 10**18
                options.append(ParamOption(stem, max_value=max_value))
        return options

    def __len__(self) -> int:
        return len(self.options)

    @property
    def size(self) -> float:
        """The number of points in the optimization space (a very large float)."""
        return math.exp(self.log_size)

    @property
    def log_size(self) -> float:
        """Natural log of the optimization-space size."""
        return sum(math.log(len(option)) for option in self.options)

    @property
    def log10_size(self) -> float:
        """Base-10 log of the optimization-space size (the paper quotes ~4461
        for GCC 11.2 and ~430 for GCC 5)."""
        return self.log_size / math.log(10)

    def choices_to_commandline(self, choices: Sequence[int]) -> str:
        """Render a full choice vector as a GCC command line fragment."""
        parts = []
        for option, choice in zip(self.options, choices):
            text = option[choice]
            if text:
                parts.append(text)
        return " ".join(parts)

    def default_choices(self) -> List[int]:
        return [0] * len(self.options)

    def random_choices(self, rng) -> List[int]:
        return [int(rng.integers(len(option))) for option in self.options]
