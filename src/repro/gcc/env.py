"""The GCC flag-tuning environment."""

from typing import List, Optional, Union

from repro.core.datasets import Benchmark, Datasets
from repro.core.env import CompilerEnv
from repro.core.service.connection import ConnectionOpts
from repro.core.spaces.reward import Reward
from repro.gcc.datasets import make_gcc_datasets
from repro.gcc.service import make_gcc_session_type
from repro.llvm.rewards import DeltaReward

DEFAULT_BENCHMARK = "benchmark://chstone-v0/adpcm"


def make_gcc_rewards() -> List[Reward]:
    """The two deterministic reward signals of the GCC environment: the change
    in assembly size and in object-code size."""
    return [
        DeltaReward("asm_size", "asm_size", deterministic=True, platform_dependent=True),
        DeltaReward("obj_size", "obj_size", deterministic=True, platform_dependent=True),
    ]


class GccEnv(CompilerEnv):
    """Command-line flag tuning against the simulated GCC.

    The compiler version is selected with the ``gcc_bin`` string specifier
    (e.g. ``"docker:gcc:11.2.0"`` or ``"gcc-5"``), as in the paper; only the
    version suffix matters for the simulated option space.
    """

    def __init__(
        self,
        benchmark: Optional[Union[str, Benchmark]] = None,
        observation_space: Optional[str] = None,
        reward_space: Optional[str] = None,
        gcc_bin: str = "docker:gcc:11.2.0",
        datasets: Optional[Datasets] = None,
        connection_opts: Optional[ConnectionOpts] = None,
        **kwargs,
    ):
        self.gcc_bin = gcc_bin
        version = self._version_from_specifier(gcc_bin)
        super().__init__(
            session_type=make_gcc_session_type(version),
            datasets=datasets or make_gcc_datasets(),
            rewards=make_gcc_rewards(),
            benchmark=benchmark or DEFAULT_BENCHMARK,
            observation_space=observation_space,
            reward_space=reward_space,
            connection_opts=connection_opts,
            **kwargs,
        )

    @staticmethod
    def _version_from_specifier(specifier: str) -> str:
        """Extract a GCC version from a path or docker image specifier."""
        tail = specifier.rsplit(":", 1)[-1]
        tail = tail.replace("gcc-", "").replace("gcc", "")
        digits = "".join(ch for ch in tail if ch.isdigit() or ch == ".").strip(".")
        return digits or "11.2.0"

    # -- GCC-specific helpers -----------------------------------------------------

    @property
    def gcc_spec(self):
        """The option-space specification of the selected compiler version."""
        return self.session_type.gcc_spec

    @property
    def choices(self) -> List[int]:
        """The current configuration (one choice index per option)."""
        return self.observation["choices"]

    @choices.setter
    def choices(self, choices: List[int]) -> None:
        if self._session_id is None:
            self.reset()
        self.service.handle_session_parameter(
            self._session_id, "gcc.set_choices", ",".join(str(int(v)) for v in choices)
        )

    @property
    def command_line(self) -> str:
        """The GCC command line for the current configuration."""
        return self.observation["command_line"]

    @property
    def asm_size(self) -> int:
        return self.observation["asm_size"]

    @property
    def obj_size(self) -> int:
        return self.observation["obj_size"]


def make_gcc_env(**kwargs) -> GccEnv:
    """Entry point used by the environment registry."""
    return GccEnv(**kwargs)
