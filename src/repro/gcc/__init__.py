"""Simulated GCC command-line flag-tuning environment.

Reproduces the structure of the paper's GCC environment: a version-dependent
option space (the six ``-O<n>`` levels, hundreds of three-state ``-f`` flags,
and hundreds of ``--param`` options), two interchangeable action spaces, and
deterministic assembly/object size objectives produced by a simulated
compiler back end.
"""

from repro.gcc.spec import GccSpec, Option, FlagOption, OLevelOption, ParamOption
from repro.gcc.compiler import SimulatedGcc
from repro.gcc.env import GccEnv, make_gcc_env

__all__ = [
    "FlagOption",
    "GccEnv",
    "GccSpec",
    "OLevelOption",
    "Option",
    "ParamOption",
    "SimulatedGcc",
    "make_gcc_env",
]
