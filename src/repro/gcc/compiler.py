"""The simulated GCC backend: a deterministic cost model over configurations.

The paper drives real GCC builds in Docker and measures the size of the
produced assembly and object code. Offline, this module models that objective
deterministically with the structure that makes flag tuning interesting:

* each ``-O`` level sets a baseline size multiplier (``-Os`` smallest);
* each flag has a per-benchmark effect (some shrink, some grow, most are
  negligible) that can depend on the active ``-O`` level;
* numeric parameters have a benchmark-specific sweet spot on a log scale;
* a sparse set of flag pairs interact (enabling both is better or worse than
  the sum of their individual effects).

Because the mapping from (benchmark, configuration) to size is a pure
function of a cryptographic hash, results are exactly reproducible across
machines and runs — mirroring "deterministic reward" in the paper's taxonomy.
"""

import hashlib
import math
from typing import Dict, List, Sequence

from repro.gcc.spec import FlagOption, GccSpec, OLevelOption, Option, ParamOption

# Baseline size multiplier of each -O level relative to -O0.
_O_LEVEL_FACTORS = {
    "": 1.0,        # Unspecified: -O0 behaviour.
    "-O0": 1.0,
    "-O1": 0.86,
    "-O2": 0.80,
    "-O3": 0.84,    # Larger than -O2: speed transforms grow code.
    "-Ofast": 0.85,
    "-Og": 0.90,
    "-Os": 0.74,
}

# The fraction of asm bytes that survive into the object's .text section.
_OBJ_FROM_ASM = 0.44


def _unit_hash(*parts: str) -> float:
    """A deterministic float in [0, 1) derived from the argument strings."""
    digest = hashlib.sha256("/".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


class SimulatedGcc:
    """Deterministic (benchmark, configuration) -> size cost model."""

    def __init__(self, spec: GccSpec):
        self.spec = spec
        self.compile_count = 0

    # -- configuration effects --------------------------------------------------
    #
    # Effects are expressed as signed *contributions*: positive values shrink
    # code, negative values grow it. Benefits accumulate with diminishing
    # returns (a saturating exponential) while penalties accumulate linearly
    # up to a cap, so no configuration collapses to a trivial floor and the
    # search problem keeps structure: which flags to enable matters, not just
    # how many.

    MAX_BENEFIT = 0.34        # Largest achievable size reduction beyond the -O level.
    BENEFIT_SCALE = 0.14      # Saturation constant for accumulated benefits.
    MAX_PENALTY = 0.12        # Largest achievable size growth from bad flags.

    def _flag_contribution(self, benchmark_id: str, option: FlagOption, choice: int, o_level: str) -> float:
        """Signed size contribution of one flag setting (positive = smaller)."""
        if choice == 0:
            return 0.0
        kind = _unit_hash(benchmark_id, option.name)
        magnitude = _unit_hash(benchmark_id, option.name, "mag")
        if kind < 0.30:
            contribution = 0.020 * magnitude          # Beneficial flag.
        elif kind < 0.55:
            contribution = -0.012 * magnitude         # Harmful flag.
        else:
            contribution = 0.001 * (magnitude - 0.5)  # Near no-op.
        if o_level in ("-O2", "-O3", "-Ofast", "-Os"):
            # Much of the win is already included in the -O level defaults.
            contribution *= 0.5
        if choice == 2:  # -fno-X inverts the effect, attenuated.
            contribution = -0.7 * contribution
        elif choice > 2:  # Argument forms scale with the argument index.
            contribution *= 1.0 + 0.2 * (choice - 2)
        return contribution

    def _param_contribution(self, benchmark_id: str, option: ParamOption, choice: int) -> float:
        """Signed size contribution of one --param setting.

        Numeric parameters have a benchmark-specific sweet spot on a log
        scale; only a minority of parameters matter for a given benchmark.
        """
        if choice == 0:
            return 0.0
        if option.enum_values:
            return 0.008 * (_unit_hash(benchmark_id, option.name, str(choice)) - 0.5)
        relevance = _unit_hash(benchmark_id, option.name, "rel")
        if relevance > 0.30:
            return 0.0
        value = choice - 1
        span = math.log1p(option.max_value)
        sweet_spot = _unit_hash(benchmark_id, option.name, "sweet") * span
        distance = abs(math.log1p(value) - sweet_spot) / max(span, 1e-9)
        # Up to 1.5% benefit at the sweet spot, up to 1% penalty far from it.
        return 0.015 * (1.0 - distance) - 0.010 * distance

    def _interaction_effect(self, benchmark_id: str, commandline_flags: List[str]) -> float:
        """Pairwise interactions between enabled flags (sparse)."""
        effect = 1.0
        enabled = [flag for flag in commandline_flags if flag.startswith("-f") and not flag.startswith("-fno-")]
        for i in range(0, len(enabled) - 1, 7):  # Sparse sampling of pairs keeps this O(n).
            a, b = enabled[i], enabled[i + 1]
            pair = _unit_hash(benchmark_id, "pair", a, b)
            if pair < 0.12:
                effect *= 0.985
            elif pair > 0.93:
                effect *= 1.02
        return effect

    # -- public API ----------------------------------------------------------------

    def base_size(self, benchmark_id: str) -> int:
        """The -O0 assembly size of a benchmark, in bytes."""
        return int(6_000 + _unit_hash(benchmark_id, "base") * 90_000)

    def asm_size(self, benchmark_id: str, choices: Sequence[int]) -> int:
        """Assembly size in bytes for a configuration."""
        self.compile_count += 1
        o_level = ""
        commandline_flags: List[str] = []
        for option, choice in zip(self.spec.options, choices):
            if isinstance(option, OLevelOption):
                o_level = option[choice]
            elif option[choice]:
                commandline_flags.append(option[choice])
        benefit = 0.0
        penalty = 0.0
        for option, choice in zip(self.spec.options, choices):
            if isinstance(option, FlagOption):
                contribution = self._flag_contribution(benchmark_id, option, choice, o_level)
            elif isinstance(option, ParamOption):
                contribution = self._param_contribution(benchmark_id, option, choice)
            else:
                continue
            if contribution >= 0:
                benefit += contribution
            else:
                penalty -= contribution
        # Benefits saturate (diminishing returns); penalties are capped.
        reduction = self.MAX_BENEFIT * (1.0 - math.exp(-benefit / self.BENEFIT_SCALE))
        growth = min(self.MAX_PENALTY, penalty)
        factor = _O_LEVEL_FACTORS.get(o_level, 1.0) * (1.0 - reduction + growth)
        factor *= self._interaction_effect(benchmark_id, commandline_flags)
        return int(round(self.base_size(benchmark_id) * max(0.30, factor)))

    def obj_size(self, benchmark_id: str, choices: Sequence[int]) -> int:
        """Object-code (.text) size in bytes for a configuration."""
        return int(round(self.asm_size(benchmark_id, choices) * _OBJ_FROM_ASM))

    def asm_text(self, benchmark_id: str, choices: Sequence[int]) -> str:
        """A small synthetic assembly listing (the ``asm`` observation)."""
        size = self.asm_size(benchmark_id, choices)
        commandline = self.spec.choices_to_commandline(choices)
        lines = [
            f"\t.file\t\"{benchmark_id}.c\"",
            f"\t# flags: {commandline or '(default)'}",
            "\t.text",
            "\t.globl\tmain",
            "main:",
        ]
        for i in range(min(64, size // 200)):
            lines.append(f"\tmovl\t${i}, %eax" if i % 3 else f"\taddl\t${i}, %ebx")
        lines.append("\tret")
        lines.append(f"\t.size\tmain, {size}")
        return "\n".join(lines)

    def rtl_text(self, benchmark_id: str, choices: Sequence[int]) -> str:
        """A small synthetic RTL dump (the ``rtl`` observation)."""
        size = self.asm_size(benchmark_id, choices)
        return "\n".join(
            f"(insn {i} {i - 1} {i + 1} (set (reg:SI {i}) (const_int {size % (i + 7)})))"
            for i in range(1, min(40, size // 400) + 1)
        )

    def instruction_counts(self, benchmark_id: str, choices: Sequence[int]) -> Dict[str, int]:
        """Estimated per-mnemonic instruction counts (the ``instruction_counts``
        observation)."""
        size = self.asm_size(benchmark_id, choices)
        mnemonics = ["mov", "add", "sub", "mul", "cmp", "jmp", "call", "ret", "push", "pop"]
        counts = {}
        remaining = size // 4
        for i, mnemonic in enumerate(mnemonics):
            share = _unit_hash(benchmark_id, "mnemonic", mnemonic)
            counts[mnemonic] = int(remaining * share / len(mnemonics)) + (1 if i < 3 else 0)
        return counts
