"""Benchmark datasets for the GCC environment.

The GCC experiments in the paper use the CHStone suite (Table V) and csmith
programs. A GCC benchmark is identified by URI; its payload is an opaque
benchmark identifier consumed by the simulated compiler's cost model.
"""

from typing import Iterator

import numpy as np

from repro.core.datasets import Benchmark, Dataset, Datasets
from repro.core.datasets.uri import BenchmarkUri

CHSTONE_PROGRAMS = [
    "adpcm", "aes", "blowfish", "dfadd", "dfdiv", "dfmul",
    "dfsin", "gsm", "jpeg", "mips", "motion", "sha",
]


class GccChstoneDataset(Dataset):
    """The 12 CHStone high-level-synthesis benchmarks."""

    def __init__(self):
        super().__init__(
            name="benchmark://chstone-v0",
            description="Benchmark programs for C-based high-level synthesis (CHStone)",
            license="Mixed",
            benchmark_count=len(CHSTONE_PROGRAMS),
            sort_order=-1,
        )

    def benchmark_uris(self) -> Iterator[str]:
        for program in CHSTONE_PROGRAMS:
            yield f"{self.name}/{program}"

    def benchmark_from_parsed_uri(self, uri: BenchmarkUri) -> Benchmark:
        if uri.path not in CHSTONE_PROGRAMS:
            raise LookupError(f"Unknown CHStone benchmark: {uri}")
        return Benchmark(uri=str(uri), program={"benchmark_id": f"chstone/{uri.path}"})


class GccCsmithDataset(Dataset):
    """Random C programs addressed by 32-bit seed."""

    def __init__(self):
        super().__init__(
            name="generator://csmith-v0",
            description="Random C programs (Csmith-style generator)",
            license="BSD",
            benchmark_count=0,
        )
        self.seed_max = 2**32

    def benchmark_uris(self) -> Iterator[str]:
        for seed in range(self.seed_max):
            yield f"{self.name}/{seed}"

    def benchmark_from_parsed_uri(self, uri: BenchmarkUri) -> Benchmark:
        if not uri.path.isdigit() or not 0 <= int(uri.path) < self.seed_max:
            raise LookupError(f"Csmith benchmarks are addressed by 32-bit seed: {uri}")
        return Benchmark(uri=str(uri), program={"benchmark_id": f"csmith/{uri.path}"})

    def _random_benchmark(self, random_state: np.random.Generator) -> Benchmark:
        return self.benchmark(f"{self.name}/{int(random_state.integers(self.seed_max))}")


def make_gcc_datasets() -> Datasets:
    """The dataset inventory of the GCC environment."""
    datasets = Datasets()
    datasets.add(GccChstoneDataset())
    datasets.add(GccCsmithDataset())
    return datasets
