"""Environment wrapper that logs state transitions to the database."""

from typing import List, Optional

from repro.core.wrappers.core import CompilerEnvWrapper
from repro.state_transition_dataset.database import StateTransitionDatabase


class StateTransitionLoggingWrapper(CompilerEnvWrapper):
    """Populates the ``Steps`` and ``Observations`` tables on every step.

    The upstream implementation writes asynchronously from a worker thread;
    this implementation batches writes and commits at episode boundaries,
    which gives the same amortized behaviour in a single process.
    """

    def __init__(self, env, database: StateTransitionDatabase, store_ir: bool = True):
        super().__init__(env)
        self.database = database
        self.store_ir = store_ir
        self._episode_rewards: List[float] = []

    def _state_id(self) -> str:
        return self.env.observation["IrSha1"]

    def _record_state(self, rewards: List[float], end_of_episode: bool = False) -> str:
        state_id = self._state_id()
        observation = self.env.observation
        self.database.add_step(
            benchmark_uri=str(self.env.benchmark.uri),
            actions=list(self.env.actions),
            state_id=state_id,
            rewards=rewards,
            end_of_episode=end_of_episode,
        )
        self.database.add_observation(
            state_id=state_id,
            ir=observation["Ir"] if self.store_ir else None,
            instcounts=list(observation["InstCount"]),
            autophase=list(observation["Autophase"]),
            instruction_count=int(observation["IrInstructionCount"]),
        )
        return state_id

    def reset(self, *args, **kwargs):
        result = self.env.reset(*args, **kwargs)
        self._episode_rewards = []
        self._record_state(rewards=[])
        self.database.commit()
        return result

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        observation, reward, done, info = self.env.multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )
        scalar_reward = reward if isinstance(reward, (int, float)) else 0.0
        self._episode_rewards.append(float(scalar_reward or 0.0))
        self._record_state(rewards=self._episode_rewards, end_of_episode=done)
        if done:
            self.database.commit()
        return observation, reward, done, info

    def close(self):
        self.database.commit()
        return self.env.close()
