"""SQLite-backed state-transition database."""

import json
import sqlite3
import zlib
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.state_transition_dataset.schema import ALL_TABLES, INDEXES


class StateTransitionDatabase:
    """A state-transition log following the paper's relational schema."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self.connection = sqlite3.connect(path)
        cursor = self.connection.cursor()
        for table in ALL_TABLES:
            cursor.execute(table)
        for index in INDEXES:
            cursor.execute(index)
        self.connection.commit()

    # -- writes ------------------------------------------------------------------

    def add_step(
        self,
        benchmark_uri: str,
        actions: Sequence[int],
        state_id: str,
        rewards: Sequence[float],
        end_of_episode: bool = False,
    ) -> None:
        self.connection.execute(
            "INSERT OR REPLACE INTO Steps (benchmark_uri, actions, state_id, end_of_episode, rewards)"
            " VALUES (?, ?, ?, ?, ?)",
            (benchmark_uri, json.dumps(list(actions)), state_id, int(end_of_episode), json.dumps(list(rewards))),
        )

    def add_observation(
        self,
        state_id: str,
        ir: Optional[str] = None,
        instcounts: Optional[Sequence[int]] = None,
        autophase: Optional[Sequence[int]] = None,
        instruction_count: Optional[int] = None,
    ) -> None:
        self.connection.execute(
            "INSERT OR REPLACE INTO Observations"
            " (state_id, compressed_ir, instcounts, autophase, instruction_count)"
            " VALUES (?, ?, ?, ?, ?)",
            (
                state_id,
                zlib.compress(ir.encode("utf-8")) if ir is not None else None,
                json.dumps([int(v) for v in instcounts]) if instcounts is not None else None,
                json.dumps([int(v) for v in autophase]) if autophase is not None else None,
                instruction_count,
            ),
        )

    def add_transition(
        self, state_id: str, action: int, next_state_id: str, rewards: Sequence[float]
    ) -> None:
        self.connection.execute(
            "INSERT OR REPLACE INTO StateTransitions (state_id, action, next_state_id, rewards)"
            " VALUES (?, ?, ?, ?)",
            (state_id, int(action), next_state_id, json.dumps(list(rewards))),
        )

    def commit(self) -> None:
        self.connection.commit()

    # -- reads --------------------------------------------------------------------

    def num_steps(self) -> int:
        return self.connection.execute("SELECT COUNT(*) FROM Steps").fetchone()[0]

    def num_unique_states(self) -> int:
        return self.connection.execute("SELECT COUNT(*) FROM Observations").fetchone()[0]

    def num_transitions(self) -> int:
        return self.connection.execute("SELECT COUNT(*) FROM StateTransitions").fetchone()[0]

    def steps(self) -> Iterator[Tuple[str, List[int], str, bool, List[float]]]:
        for row in self.connection.execute(
            "SELECT benchmark_uri, actions, state_id, end_of_episode, rewards FROM Steps"
        ):
            yield row[0], json.loads(row[1]), row[2], bool(row[3]), json.loads(row[4])

    def observation(self, state_id: str) -> Optional[dict]:
        row = self.connection.execute(
            "SELECT state_id, compressed_ir, instcounts, autophase, instruction_count"
            " FROM Observations WHERE state_id = ?",
            (state_id,),
        ).fetchone()
        if row is None:
            return None
        return {
            "state_id": row[0],
            "ir": zlib.decompress(row[1]).decode("utf-8") if row[1] is not None else None,
            "instcounts": json.loads(row[2]) if row[2] else None,
            "autophase": json.loads(row[3]) if row[3] else None,
            "instruction_count": row[4],
        }

    def observations(self) -> Iterator[dict]:
        for (state_id,) in self.connection.execute("SELECT state_id FROM Observations"):
            yield self.observation(state_id)

    def transitions(self) -> Iterator[Tuple[str, int, str, List[float]]]:
        for row in self.connection.execute(
            "SELECT state_id, action, next_state_id, rewards FROM StateTransitions"
        ):
            yield row[0], row[1], row[2], json.loads(row[3])

    def close(self) -> None:
        self.connection.commit()
        self.connection.close()

    def __enter__(self) -> "StateTransitionDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
