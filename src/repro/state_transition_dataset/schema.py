"""SQL schema of the state-transition database (Figure 4 of the paper)."""

# Steps: every unique action sequence observed for a benchmark, keyed by the
# hash of the environment state it produces.
STEPS_TABLE = """
CREATE TABLE IF NOT EXISTS Steps (
    benchmark_uri TEXT NOT NULL,
    actions TEXT NOT NULL,
    state_id TEXT NOT NULL,
    end_of_episode INTEGER NOT NULL DEFAULT 0,
    rewards TEXT NOT NULL DEFAULT '[]',
    PRIMARY KEY (benchmark_uri, actions)
);
"""

# Observations: representations of each unique state, keyed by state hash.
OBSERVATIONS_TABLE = """
CREATE TABLE IF NOT EXISTS Observations (
    state_id TEXT NOT NULL PRIMARY KEY,
    compressed_ir BLOB,
    instcounts TEXT,
    autophase TEXT,
    instruction_count INTEGER
);
"""

# StateTransitions: deduplicated (state, action) -> next state edges.
STATE_TRANSITIONS_TABLE = """
CREATE TABLE IF NOT EXISTS StateTransitions (
    state_id TEXT NOT NULL,
    action INTEGER NOT NULL,
    next_state_id TEXT NOT NULL,
    rewards TEXT NOT NULL DEFAULT '[]',
    PRIMARY KEY (state_id, action, next_state_id)
);
"""

INDEXES = [
    "CREATE INDEX IF NOT EXISTS idx_steps_state ON Steps(state_id);",
    "CREATE INDEX IF NOT EXISTS idx_transitions_state ON StateTransitions(state_id);",
]

ALL_TABLES = [STEPS_TABLE, OBSERVATIONS_TABLE, STATE_TRANSITIONS_TABLE]
