"""The State Transition Dataset (Section III-F of the paper).

A relational (SQLite) database logging environment state transitions for
offline analysis: a ``Steps`` table of unique action sequences, an
``Observations`` table of per-state representations keyed by state hash, and
a ``StateTransitions`` table of deduplicated transitions with rewards. An
asynchronous wrapper populates the database during normal environment use,
and a post-processing step builds the transitions table.
"""

from repro.state_transition_dataset.database import StateTransitionDatabase
from repro.state_transition_dataset.wrapper import StateTransitionLoggingWrapper
from repro.state_transition_dataset.postprocess import populate_state_transitions

__all__ = [
    "StateTransitionDatabase",
    "StateTransitionLoggingWrapper",
    "populate_state_transitions",
]
