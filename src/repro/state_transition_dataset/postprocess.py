"""Post-processing: build the deduplicated StateTransitions table.

The paper describes a post-processing script that de-duplicates the logged
steps and populates the ``StateTransitions`` table encoding unique
``(state, action) -> next state`` edges with their rewards.
"""

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.state_transition_dataset.database import StateTransitionDatabase


def populate_state_transitions(database: StateTransitionDatabase) -> int:
    """Derive StateTransitions rows from the Steps table. Returns the number
    of unique transitions recorded."""
    # Index steps by (benchmark, action-prefix) so each step's predecessor can
    # be found: the step with one fewer action.
    by_key: Dict[Tuple[str, str], Tuple[str, List[float]]] = {}
    steps = list(database.steps())
    for benchmark_uri, actions, state_id, _end, rewards in steps:
        by_key[(benchmark_uri, ",".join(map(str, actions)))] = (state_id, rewards)

    transitions = set()
    count = 0
    for benchmark_uri, actions, state_id, _end, rewards in steps:
        if not actions:
            continue
        prefix_key = (benchmark_uri, ",".join(map(str, actions[:-1])))
        if prefix_key not in by_key:
            continue
        previous_state, _ = by_key[prefix_key]
        action = actions[-1]
        step_reward = rewards[-1] if rewards else 0.0
        edge = (previous_state, action, state_id)
        if edge in transitions:
            continue
        transitions.add(edge)
        database.add_transition(previous_state, action, state_id, [step_reward])
        count += 1
    database.commit()
    return count


def transition_statistics(database: StateTransitionDatabase) -> Dict[str, int]:
    """Summary statistics of a populated database."""
    out_degree = defaultdict(int)
    for state_id, _action, _next_state, _rewards in database.transitions():
        out_degree[state_id] += 1
    return {
        "steps": database.num_steps(),
        "unique_states": database.num_unique_states(),
        "transitions": database.num_transitions(),
        "max_out_degree": max(out_degree.values()) if out_degree else 0,
    }
