"""The Explorer REST API.

The CompilerGym Explorer is a React web app that calls a REST API to start
sessions, take (and undo) steps, and read back observation/reward trends.
The React client is presentation only; this module reproduces the API it
calls, implemented dependency-free on ``http.server`` so it runs offline.

Endpoints (all return JSON):

* ``GET /api/v1/describe`` — spaces of the LLVM environment.
* ``POST /api/v1/start/<reward>/<actions>/<benchmark...>`` — start a session,
  optionally replaying a comma-separated action list; returns session id and
  per-state metrics.
* ``POST /api/v1/step/<session>/<actions>`` — apply actions.
* ``POST /api/v1/undo/<session>/<n>`` — undo the last n actions.
* ``POST /api/v1/stop/<session>`` — end the session.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import unquote

import repro
from repro.core.wrappers import ForkOnStep


class ExplorerAPI:
    """Session manager behind the REST endpoints (usable directly in-process)."""

    def __init__(
        self,
        env_id: str = "llvm-v0",
        reward_space: str = "IrInstructionCountOz",
        service_url: Optional[str] = None,
        service_token: Optional[str] = None,
    ):
        self.env_id = env_id
        self.default_reward_space = reward_space
        # When set, Explorer sessions attach to a running compiler service
        # daemon (`repro serve`) or session-routing gateway (`repro gateway`)
        # instead of each hosting a runtime: the REST frontend becomes one
        # more client of the shared service tier. ``service_token``
        # authenticates those connections when the service requires it.
        self.service_url = service_url
        self.service_token = service_token
        self.sessions: Dict[int, ForkOnStep] = {}
        self._next_session = 0
        self._lock = threading.Lock()

    # -- session lifecycle ---------------------------------------------------------

    def describe(self) -> dict:
        env = repro.make(
            self.env_id,
            service_url=self.service_url,
            service_token=self.service_token,
        )
        try:
            return {
                "actions": list(getattr(env.action_space, "names", [])),
                "observations": sorted(env.observation.spaces),
                "rewards": sorted(env.reward.spaces),
                "benchmarks": [d.name for d in env.datasets],
            }
        finally:
            env.close()

    def start(self, reward: str, benchmark: str, actions: Optional[List[int]] = None) -> dict:
        env = repro.make(
            self.env_id,
            benchmark=benchmark,
            reward_space=reward,
            service_url=self.service_url,
            service_token=self.service_token,
        )
        env.reset()
        wrapped = ForkOnStep(env)
        with self._lock:
            session_id = self._next_session
            self._next_session += 1
            self.sessions[session_id] = wrapped
        states = [self._state_dict(wrapped)]
        if actions:
            result = self.step(session_id, actions)
            states.extend(result["states"])
        return {"session_id": session_id, "states": states}

    def step(self, session_id: int, actions: List[int]) -> dict:
        env = self.sessions[session_id]
        states = []
        for action in actions:
            _, reward, done, _ = env.step(int(action))
            states.append(self._state_dict(env, reward=reward, done=done))
        return {"states": states}

    def undo(self, session_id: int, count: int) -> dict:
        env = self.sessions[session_id]
        for _ in range(count):
            if not env.stack:
                break
            env.undo()
        return {"state": self._state_dict(env)}

    def stop(self, session_id: int) -> dict:
        env = self.sessions.pop(session_id, None)
        if env is not None:
            env.close()
        return {"session_id": session_id, "status": "closed"}

    @staticmethod
    def _state_dict(env, reward: Optional[float] = None, done: bool = False) -> dict:
        unwrapped = env.unwrapped if hasattr(env, "unwrapped") else env
        return {
            "commandline": unwrapped.commandline(),
            "instruction_count": int(unwrapped.observation["IrInstructionCount"]),
            "autophase": [int(v) for v in unwrapped.observation["Autophase"]],
            "reward": reward,
            "cumulative_reward": unwrapped.episode_reward,
            "done": done,
        }


def create_server(host: str = "127.0.0.1", port: int = 5000, api: Optional[ExplorerAPI] = None):
    """Create (but do not start) a ThreadingHTTPServer serving the API."""
    api = api or ExplorerAPI()

    class Handler(BaseHTTPRequestHandler):
        def _reply(self, payload: dict, status: int = 200) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002 - silence default logging
            del format, args

        def _route(self) -> None:
            parts = [unquote(p) for p in self.path.strip("/").split("/") if p]
            try:
                if parts[:2] == ["api", "v1"]:
                    if parts[2] == "describe":
                        return self._reply(api.describe())
                    if parts[2] == "start":
                        reward, actions = parts[3], parts[4]
                        benchmark = "/".join(parts[5:])
                        action_list = [int(a) for a in actions.split(",") if a and a != "-"]
                        return self._reply(api.start(reward, benchmark, action_list))
                    if parts[2] == "step":
                        session, actions = int(parts[3]), [int(a) for a in parts[4].split(",") if a]
                        return self._reply(api.step(session, actions))
                    if parts[2] == "undo":
                        return self._reply(api.undo(int(parts[3]), int(parts[4])))
                    if parts[2] == "stop":
                        return self._reply(api.stop(int(parts[3])))
                self._reply({"error": f"Unknown endpoint: {self.path}"}, status=404)
            except Exception as error:  # noqa: BLE001 - API errors become 500 responses
                self._reply({"error": str(error)}, status=500)

        def do_GET(self):  # noqa: N802 - http.server API
            self._route()

        def do_POST(self):  # noqa: N802 - http.server API
            self._route()

    server = ThreadingHTTPServer((host, port), Handler)
    server.api = api
    return server
