"""REST API for driving environments over HTTP (the Explorer backend)."""

from repro.web.rest import ExplorerAPI, create_server

__all__ = ["ExplorerAPI", "create_server"]
