"""repro: a reproduction of CompilerGym (CGO 2022).

The package mirrors the ``compiler_gym`` public API: ``make()`` constructs an
environment by ID, ``COMPILER_GYM_ENVS`` lists the registered environments,
and the ``wrappers``, ``datasets``, and ``spaces`` modules provide the
supporting toolkit.

>>> import repro as compiler_gym
>>> env = compiler_gym.make(
...     "llvm-v0",
...     benchmark="cbench-v1/qsort",
...     observation_space="Autophase",
...     reward_space="IrInstructionCount",
... )
>>> observation = env.reset()
>>> observation, reward, done, info = env.step(env.action_space.sample())
"""

from repro.core import CompilerEnv, CompilerEnvState
from repro.core.registration import make, register, registered_env_ids
from repro.core.vector import VecCompilerEnv, make_vec_env
from repro.core import wrappers  # noqa: F401 - re-exported module
from repro.core import spaces  # noqa: F401 - re-exported module
from repro.core.validation import ValidationResult, validate_states
from repro.errors import CompilerGymError, ValidationError

__version__ = "1.0.0"

# -- environment registration -------------------------------------------------

register(
    id="llvm-v0",
    entry_point="repro.llvm.env:make_llvm_env",
    kwargs={},
)
register(
    id="llvm-ic-v0",
    entry_point="repro.llvm.env:make_llvm_env",
    kwargs={"reward_space": "IrInstructionCount"},
)
register(
    id="llvm-autophase-ic-v0",
    entry_point="repro.llvm.env:make_llvm_env",
    kwargs={"observation_space": "Autophase", "reward_space": "IrInstructionCountOz"},
)
register(
    id="llvm-autophase-codesize-v0",
    entry_point="repro.llvm.env:make_llvm_env",
    kwargs={"observation_space": "Autophase", "reward_space": "IrInstructionCount"},
)
register(
    id="llvm-instcount-ic-v0",
    entry_point="repro.llvm.env:make_llvm_env",
    kwargs={"observation_space": "InstCount", "reward_space": "IrInstructionCountOz"},
)
register(
    id="gcc-v0",
    entry_point="repro.gcc.env:make_gcc_env",
    kwargs={},
)
register(
    id="loop_tool-v0",
    entry_point="repro.loop_tool.env:make_loop_tool_env",
    kwargs={},
)

#: The list of registered CompilerGym environment IDs.
COMPILER_GYM_ENVS = registered_env_ids()

__all__ = [
    "COMPILER_GYM_ENVS",
    "CompilerEnv",
    "CompilerEnvState",
    "CompilerGymError",
    "ValidationError",
    "ValidationResult",
    "__version__",
    "make",
    "register",
    "registered_env_ids",
    "spaces",
    "validate_states",
    "wrappers",
]
