"""Figure 8: learning an instruction-count cost model from the State
Transition Dataset.

Builds a state-transition database by logging random trajectories, extracts
(ProGraML graph, instruction count) pairs, trains the gated-graph-network
cost model on an 80/20 split, and records the validation relative error per
training epoch. The paper reports a final relative error of 0.025 against a
naive mean-prediction baseline of 1.393; the shape to reproduce is a
converging validation curve that ends well below the naive baseline.
"""

import random

from conftest import bench_scale, save_results, save_table

import repro
from repro.cost_model import CostModelTrainer, GatedGraphNeuralNetwork
from repro.llvm.analysis.programl import programl_graph
from repro.llvm.ir.parser import parse_module
from repro.state_transition_dataset import (
    StateTransitionDatabase,
    StateTransitionLoggingWrapper,
    populate_state_transitions,
)


def _build_database(num_episodes: int, steps_per_episode: int) -> StateTransitionDatabase:
    database = StateTransitionDatabase()
    env = repro.make("llvm-v0", reward_space="IrInstructionCount")
    wrapper = StateTransitionLoggingWrapper(env, database)
    rng = random.Random(0)
    benchmarks = [f"generator://csmith-v0/{i}" for i in range(num_episodes)]
    try:
        for benchmark_uri in benchmarks:
            wrapper.reset(benchmark=benchmark_uri)
            for _ in range(steps_per_episode):
                wrapper.step(rng.randrange(env.action_space.n))
    finally:
        wrapper.close()
    populate_state_transitions(database)
    return database


def test_fig8_cost_model_from_state_transition_dataset(benchmark):
    scale = bench_scale()
    num_episodes = int(14 * scale)
    steps_per_episode = int(6 * scale)
    epochs = int(20 * scale)

    def run_experiment():
        database = _build_database(num_episodes, steps_per_episode)
        graphs, targets = [], []
        for observation in database.observations():
            if observation["ir"]:
                graphs.append(programl_graph(parse_module(observation["ir"])))
                targets.append(observation["instruction_count"])
        split = max(2, int(0.8 * len(graphs)))
        trainer = CostModelTrainer(GatedGraphNeuralNetwork(hidden_dim=48, seed=0), seed=0)
        curve = trainer.fit(graphs[:split], targets[:split], graphs[split:], targets[split:], epochs=epochs)
        return {
            "unique_states": database.num_unique_states(),
            "transitions": database.num_transitions(),
            "train_size": split,
            "validation_size": len(graphs) - split,
            "epochs": curve.epochs,
            "validation_relative_error": curve.validation_relative_error,
            "naive_relative_error": curve.naive_relative_error,
        }

    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    final_error = results["validation_relative_error"][-1]
    rows = [
        f"epoch={epoch:>3}  validation relative error={error:.4f}"
        for epoch, error in zip(results["epochs"], results["validation_relative_error"])
    ]
    rows.append(f"naive mean-prediction baseline: {results['naive_relative_error']:.4f}")
    rows.append(f"final learned model: {final_error:.4f} (paper: 0.025 vs naive 1.393)")
    save_table("fig8", "Figure 8: GGNN instruction-count cost model", rows)
    save_results("fig8", results)

    # Shape checks: the learned model ends well below the naive baseline and
    # the curve improves from its starting point.
    assert final_error < results["naive_relative_error"]
    assert final_error < 0.25
    assert final_error <= results["validation_relative_error"][0]
