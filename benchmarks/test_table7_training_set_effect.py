"""Table VII: the effect of the training set on generalization.

Trains a PPO agent on each of three datasets (Csmith, GitHub, TensorFlow) and
cross-evaluates every trained agent on test benchmarks from all three
datasets, producing the 3x3 generalization matrix of Table VII. The shape to
reproduce: each agent performs best (or near best) on test programs from its
own training distribution.
"""

from conftest import bench_scale, save_results, save_table

import repro
from repro.rl import PPOAgent
from repro.rl.trainer import (
    evaluate_codesize_reduction,
    make_rl_environment,
    observation_dim,
    train_agent,
)

NUM_ACTIONS = 42
EPISODE_LENGTH = 25

TRAINING_SETS = {
    "Csmith": [f"generator://csmith-v0/{i}" for i in range(15)],
    "GitHub": [f"benchmark://github-v0/{i}" for i in range(15)],
    "TensorFlow": [f"benchmark://tensorflow-v0/{i}" for i in range(15)],
}
TEST_SETS = {
    "Csmith": [f"generator://csmith-v0/{20_000 + i}" for i in range(3)],
    "GitHub": [f"benchmark://github-v0/{1_000 + i}" for i in range(3)],
    "TensorFlow": [f"benchmark://tensorflow-v0/{500 + i}" for i in range(3)],
}


def test_table7_effect_of_training_set(benchmark):
    scale = bench_scale()
    training_episodes = int(90 * scale)
    obs_dim = observation_dim("Autophase", True, NUM_ACTIONS)

    def run_experiment():
        matrix = {}
        env = repro.make("llvm-v0", reward_space="IrInstructionCountNorm")
        wrapped = make_rl_environment(env, episode_length=EPISODE_LENGTH)
        try:
            for train_name, training_benchmarks in TRAINING_SETS.items():
                agent = PPOAgent(obs_dim, NUM_ACTIONS, seed=0)
                train_agent(agent, wrapped, training_benchmarks, episodes=training_episodes)
                matrix[train_name] = {}
                for test_name, test_benchmarks in TEST_SETS.items():
                    result = evaluate_codesize_reduction(agent, wrapped, test_benchmarks, test_name)
                    matrix[train_name][test_name] = result.geomean_reduction
        finally:
            wrapped.close()
        return matrix

    matrix = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    corner = "train / test"
    rows = [f"{corner:<14}" + "".join(f"{t:>12}" for t in TEST_SETS)]
    for train_name, scores in matrix.items():
        rows.append(f"{train_name:<14}" + "".join(f"{scores[t]:>12.3f}" for t in TEST_SETS))
    save_table("table7", "Table VII: PPO cross-dataset generalization (geomean vs -Oz)", rows)
    save_results("table7", {"matrix": matrix, "training_episodes": training_episodes})

    # Shape checks: all entries positive, and on average the diagonal (same
    # train/test domain) is at least as good as the off-diagonal entries.
    diagonal, off_diagonal = [], []
    for train_name, scores in matrix.items():
        for test_name, value in scores.items():
            assert value > 0
            (diagonal if train_name == test_name else off_diagonal).append(value)
    assert sum(diagonal) / len(diagonal) >= (sum(off_diagonal) / len(off_diagonal)) * 0.9
