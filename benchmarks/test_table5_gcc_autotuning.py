"""Table V: autotuning GCC command-line flags on CHStone.

Runs random search, hill climbing, and a genetic algorithm over the GCC
option space, each given a fixed budget of compilations per benchmark, and
reports the geometric-mean object-code size reduction relative to -Os.

The paper's budget is 1000 compilations per benchmark; the default here is
smaller (scaled by REPRO_BENCH_SCALE). The shape to reproduce: the GA and
random search comfortably beat -Os (the paper reports 1.27x and 1.21x), while
plain hill climbing trails them (1.04x).
"""

import inspect

from conftest import bench_scale, save_results, save_table

import repro
from repro.autotuning import GeneticAlgorithm, HillClimbingSearch, RandomConfigurationSearch
from repro.autotuning import genetic as genetic_module
from repro.autotuning import hill_climbing as hill_module
from repro.autotuning import random_search as random_module
from repro.gcc.compiler import SimulatedGcc
from repro.gcc.spec import OLevelOption
from repro.llvm.datasets.suites import CHSTONE_PROGRAMS
from repro.util.statistics import geometric_mean


def _lines_of_code(module) -> int:
    source = inspect.getsource(module)
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith(("#", '"""', "'''"))
    )


def test_table5_gcc_flag_tuning(benchmark):
    compilations = int(300 * bench_scale())

    def run_experiment():
        env = repro.make("gcc-v0")
        spec = env.gcc_spec
        gcc = SimulatedGcc(spec)
        env.close()
        # Search directly over the Choices space via the simulated compiler,
        # exactly as the paper's scripts drive full configurations.
        cardinalities = [min(len(option), 64) for option in spec.options]
        os_choices = spec.default_choices()
        os_choices[0] = 1 + OLevelOption.LEVELS.index("-Os")

        tuners = {
            "Genetic Algorithm": GeneticAlgorithm(seed=0, population_size=50),
            "Hill Climbing": HillClimbingSearch(seed=0),
            "Random Search": RandomConfigurationSearch(seed=0),
        }
        reductions = {name: [] for name in tuners}
        for program in sorted(CHSTONE_PROGRAMS):
            benchmark_id = f"chstone/{program}"
            os_size = gcc.obj_size(benchmark_id, os_choices)

            def objective(config, benchmark_id=benchmark_id):
                return gcc.obj_size(benchmark_id, config)

            for name, tuner in tuners.items():
                result = tuner.tune(objective, cardinalities, max_evaluations=compilations,
                                    initial=os_choices)
                reductions[name].append(os_size / result.best_metric)
        return {name: geometric_mean(values) for name, values in reductions.items()}

    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines_of_code = {
        "Genetic Algorithm": _lines_of_code(genetic_module),
        "Hill Climbing": _lines_of_code(hill_module),
        "Random Search": _lines_of_code(random_module),
    }
    rows = [
        f"{name:<20} LoC={lines_of_code[name]:>4}  geomean obj-size reduction vs -Os: {value:.3f}x"
        for name, value in results.items()
    ]
    save_table("table5", f"Table V: GCC flag tuning on CHStone ({compilations} compilations/benchmark)", rows)
    save_results("table5", {"reductions_vs_Os": results, "lines_of_code": lines_of_code,
                            "compilations_per_benchmark": compilations})

    # Shape checks: every technique at least matches -Os (they start from it)
    # and finds a configuration meaningfully better than it, staying within
    # the plausible range of improvements the paper reports (1.0x - 1.5x).
    # (The relative ordering of the three techniques is sensitive to the
    # simulated cost surface and the reduced budget; see EXPERIMENTS.md.)
    assert all(1.0 <= value <= 1.6 for value in results.values())
    assert max(results.values()) >= 1.15
