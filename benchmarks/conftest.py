"""Shared helpers for the benchmark/experiment harness.

Every module in this directory regenerates one table or figure from the
paper's evaluation section (see DESIGN.md for the index). Budgets are scaled
down from the paper's (which used hour-long searches and 100k-episode
training runs) so the whole suite completes offline; set the
``REPRO_BENCH_SCALE`` environment variable to a value > 1 to run longer,
higher-fidelity versions.

Each experiment writes its results table to ``benchmarks/results/`` so the
numbers can be inspected after the run (and are summarized in
EXPERIMENTS.md).
"""

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Budget multiplier controlled by the REPRO_BENCH_SCALE env var."""
    try:
        return max(0.1, float(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


def save_results(name: str, payload: dict) -> Path:
    """Write an experiment's results to benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, default=str)
    return path


def save_table(name: str, header: str, rows: list) -> Path:
    """Write a human-readable table next to the JSON results."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "w") as f:
        f.write(header + "\n")
        for row in rows:
            f.write(str(row) + "\n")
    return path


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
