"""Figure 7: sweeping loop_tool schedules for point-wise addition on a GPU.

Sweeps the threading width (and per-thread inner loop size) of the point-wise
addition loop nest and records achieved FLOPs, reproducing the shape of
Fig. 7: throughput rises with thread count, the best schedules reach roughly
three quarters of the theoretical peak (~73.5% in the paper), and there is a
visible performance drop just past ~100k threads.
"""

from conftest import save_results, save_table

from repro.loop_tool.cost import PEAK_FLOPS, gp100_flops
from repro.loop_tool.ir import LoopTree

PROBLEM_SIZE = 1 << 22
THREAD_SWEEP = [
    256, 1024, 4096, 8192, 16384, 32768, 49152, 65536, 81920, 90112, 98304,
    102400, 110592, 131072, 163840, 262144, 524288, 1048576, 2097152, 4194304,
]


def _schedule(threads: int) -> LoopTree:
    tree = LoopTree(n=PROBLEM_SIZE)
    inner = max(1, PROBLEM_SIZE // threads)
    tree.split(0, factor=inner)
    tree.loops[0].size = threads
    tree.toggle_threaded(0)
    return tree


def test_fig7_loop_tool_schedule_sweep(benchmark):
    def run_sweep():
        return {threads: gp100_flops(_schedule(threads), noise=0) for threads in THREAD_SWEEP}

    sweep = benchmark(run_sweep)

    best_threads = max(sweep, key=sweep.get)
    best_fraction = sweep[best_threads] / PEAK_FLOPS
    drop_ratio = sweep[110592] / sweep[98304]

    rows = [
        f"threads={threads:>8}  flops={flops:.3e}  ({flops / PEAK_FLOPS * 100:5.1f}% of peak)"
        for threads, flops in sweep.items()
    ]
    rows.append(f"best schedule: {best_threads} threads at {best_fraction * 100:.1f}% of peak (paper: 73.5%)")
    rows.append(f"drop just past 100k threads: {drop_ratio:.2f}x of the pre-cliff throughput")
    save_table("fig7", "Figure 7: loop_tool schedule sweep (point-wise add, 4M elements)", rows)
    save_results("fig7", {"sweep": {str(k): v for k, v in sweep.items()},
                          "best_threads": best_threads, "best_fraction_of_peak": best_fraction,
                          "drop_ratio_past_100k": drop_ratio})

    # Shape checks: the tuned schedule reaches roughly three quarters of
    # peak; throughput ramps up with threads; there is a dip just past the
    # ~100k resident-thread capacity.
    assert 0.6 < best_fraction < 0.85
    assert sweep[65536] > sweep[256] * 10
    assert drop_ratio < 0.97
