"""Figure 6: cumulative distribution of step times per cBench program.

The paper plots one CDF of environment step wall times per cBench program and
reports a 560x spread between the median step time of the fastest program
(crc32) and the slowest (ghostscript). This harness measures per-program step
times over random trajectories and records the median-step-time ratio; the
*shape* to reproduce is a wide (orders-of-magnitude) spread with crc32 at the
fast end and ghostscript at the slow end.
"""

import random
import time

from conftest import bench_scale, save_results, save_table

import repro
from repro.llvm.datasets.suites import CBENCH_PROGRAMS
from repro.util.statistics import percentile


def test_fig6_step_time_distribution_per_cbench_program(benchmark):
    steps_per_program = max(8, int(16 * bench_scale()))

    def run_experiment():
        rng = random.Random(0)
        env = repro.make("llvm-v0", observation_space="Autophase", reward_space="IrInstructionCount")
        per_program = {}
        try:
            for program in sorted(CBENCH_PROGRAMS):
                uri = f"benchmark://cbench-v1/{program}"
                env.reset(benchmark=uri)
                times = []
                for _ in range(steps_per_program):
                    action = rng.randrange(env.action_space.n)
                    start = time.perf_counter()
                    env.step(action)
                    times.append(time.perf_counter() - start)
                per_program[program] = times
        finally:
            env.close()
        return per_program

    per_program = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    medians = {program: percentile(times, 50) for program, times in per_program.items()}
    fastest = min(medians, key=medians.get)
    slowest = max(medians, key=medians.get)
    spread = medians[slowest] / medians[fastest]

    rows = [
        f"{program:<16} median={medians[program] * 1e3:8.3f}ms  p90={percentile(times, 90) * 1e3:8.3f}ms"
        for program, times in sorted(per_program.items(), key=lambda kv: medians[kv[0]])
    ]
    rows.append(f"fastest={fastest} slowest={slowest} median spread={spread:.1f}x (paper: 560.3x)")
    save_table("fig6", "Figure 6: step-time distribution per cBench program", rows)
    save_results(
        "fig6",
        {
            "medians_ms": {k: v * 1e3 for k, v in medians.items()},
            "fastest": fastest,
            "slowest": slowest,
            "median_spread": spread,
        },
    )

    # Shape checks: a wide spread, with crc32 among the fastest quartile and
    # ghostscript among the slowest.
    assert spread > 10
    ordered = sorted(medians, key=medians.get)
    assert ordered.index("crc32") < len(ordered) // 2
    assert ordered.index("ghostscript") >= len(ordered) * 3 // 4
