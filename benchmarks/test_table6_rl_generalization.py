"""Table VI: reinforcement-learning agents trained on Csmith, evaluated across
program domains.

Trains the four agent families (A2C, Ape-X-style DQN, IMPALA-style, PPO) on
Csmith-generated programs and evaluates the geometric-mean code-size reduction
relative to -Oz on held-out benchmarks from every dataset in the environment.

The paper trains for 100k episodes; this harness trains for a few hundred
(scaled by REPRO_BENCH_SCALE). The qualitative shape to reproduce: agents do
best on programs from their training domain (Csmith), generalization to other
domains is markedly worse and uneven, and PPO is the most robust of the four.
"""

from conftest import bench_scale, save_results, save_table

import repro
from repro.rl import A2CAgent, ApexDQNAgent, ImpalaAgent, PPOAgent
from repro.rl.trainer import (
    evaluate_codesize_reduction,
    make_rl_environment,
    observation_dim,
    train_agent,
)
from repro.util.statistics import geometric_mean

EPISODE_LENGTH = 25
NUM_ACTIONS = 42

# Evaluation datasets: one row per dataset of Table VI.
EVAL_DATASETS = {
    "AnghaBench": "benchmark://anghabench-v1/{}",
    "BLAS": "benchmark://blas-v0/{}",
    "cBench": "benchmark://cbench-v1/{}",
    "CHStone": "benchmark://chstone-v0/{}",
    "CLgen": "benchmark://clgen-v0/{}",
    "Csmith": "generator://csmith-v0/{}",
    "GitHub": "benchmark://github-v0/{}",
    "Linux kernel": "benchmark://linux-v0/{}",
    "llvm-stress": "generator://llvm-stress-v0/{}",
    "MiBench": "benchmark://mibench-v1/{}",
    "NPB": "benchmark://npb-v0/{}",
    "OpenCV": "benchmark://opencv-v0/{}",
    "POJ-104": "benchmark://poj104-v1/{}",
    "TensorFlow": "benchmark://tensorflow-v0/{}",
}
NAMED_BENCHMARKS = {
    "cBench": ["crc32", "qsort", "sha"],
    "CHStone": ["adpcm", "sha", "motion"],
}


def _evaluation_benchmarks(dataset: str, template: str, count: int):
    if dataset in NAMED_BENCHMARKS:
        return [template.format(name) for name in NAMED_BENCHMARKS[dataset][:count]]
    if dataset == "Csmith":
        # Held-out seeds, disjoint from the training seeds (0..N).
        return [template.format(10_000 + i) for i in range(count)]
    if dataset == "llvm-stress":
        return [template.format(i) for i in range(count)]
    return [template.format(i) for i in range(count)]


def test_table6_rl_algorithm_generalization(benchmark):
    scale = bench_scale()
    training_episodes = int(120 * scale)
    eval_benchmarks_per_dataset = max(2, int(3 * scale))
    obs_dim = observation_dim("Autophase", True, NUM_ACTIONS)

    def run_experiment():
        agents = {
            "A2C": A2CAgent(obs_dim, NUM_ACTIONS, seed=0),
            "APEX": ApexDQNAgent(obs_dim, NUM_ACTIONS, seed=0, batch_size=16),
            "IMPALA": ImpalaAgent(obs_dim, NUM_ACTIONS, seed=0),
            "PPO": PPOAgent(obs_dim, NUM_ACTIONS, seed=0),
        }
        training_benchmarks = [f"generator://csmith-v0/{i}" for i in range(20)]
        table = {}
        env = repro.make("llvm-v0", reward_space="IrInstructionCountNorm")
        wrapped = make_rl_environment(env, episode_length=EPISODE_LENGTH)
        try:
            for agent_name, agent in agents.items():
                train_agent(agent, wrapped, training_benchmarks, episodes=training_episodes)
                table[agent_name] = {}
                for dataset, template in EVAL_DATASETS.items():
                    benchmarks = _evaluation_benchmarks(dataset, template, eval_benchmarks_per_dataset)
                    result = evaluate_codesize_reduction(agent, wrapped, benchmarks, dataset_name=dataset)
                    table[agent_name][dataset] = result.geomean_reduction
        finally:
            wrapped.close()
        return table

    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [f"{'Dataset':<16}" + "".join(f"{agent:>10}" for agent in table)]
    for dataset in EVAL_DATASETS:
        rows.append(
            f"{dataset:<16}" + "".join(f"{table[agent][dataset]:>10.3f}" for agent in table)
        )
    save_table("table6", "Table VI: geomean code-size reduction vs -Oz (trained on Csmith)", rows)
    save_results("table6", {"table": table, "training_episodes": training_episodes})

    # Shape checks: every score is positive; agents do best (or near best) on
    # their training domain; PPO is the strongest or tied-strongest overall.
    overall = {
        agent: geometric_mean([value for value in scores.values() if value > 0])
        for agent, scores in table.items()
    }
    for agent, scores in table.items():
        assert all(value > 0 for value in scores.values())
        in_domain = scores["Csmith"]
        cross_domain = geometric_mean(
            [value for dataset, value in scores.items() if dataset != "Csmith" and value > 0]
        )
        assert in_domain >= cross_domain * 0.8
    best_agent = max(overall, key=overall.get)
    assert overall["PPO"] >= overall[best_agent] * 0.85
