"""Ablations of the architectural design choices the paper attributes its
performance to (Section VII-A discussion).

Two ablations:

1. *Benchmark cache*: environment initialization with the service's benchmark
   cache enabled (the default) vs. disabled (every reset re-resolves and
   re-generates the benchmark), quantifying the "amortized O(1) environment
   initialization" claim.
2. *fork() vs replay*: implementing one step of backtracking greedy search by
   forking the environment vs. replaying the action prefix from reset,
   quantifying why the lightweight deep-copy operator matters for
   backtracking searches.
"""

import random
import time

from conftest import bench_scale, save_results, save_table

import repro


def test_ablation_benchmark_cache(benchmark):
    resolves = int(30 * bench_scale())
    uri = "benchmark://cbench-v1/jpeg-c"

    def run_experiment():
        env = repro.make("llvm-v0", benchmark=uri)
        try:
            env.reset()
            runtime = env.service.runtime

            # The cost the cache amortizes is benchmark *resolution*: URI
            # lookup plus program generation/parse into a module. Timing it
            # directly (rather than through env.reset(), whose session
            # bookkeeping is cache-independent and used to drown the signal)
            # isolates the "amortized O(1) environment initialization" claim.
            def mean_resolve_seconds(clear_cache: bool) -> float:
                # Best of three repetitions: resolves are fast enough that a
                # single scheduler stall during one loop would otherwise
                # dominate the mean and flip the speedup ratio.
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    for _ in range(resolves):
                        if clear_cache:
                            runtime.benchmark_cache.clear()
                        runtime._resolve_benchmark(uri)
                    best = min(best, (time.perf_counter() - start) / resolves)
                return best

            cached = mean_resolve_seconds(clear_cache=False)
            uncached = mean_resolve_seconds(clear_cache=True)

            # End-to-end reset latency with the warm cache, for context: the
            # number a user actually experiences per episode.
            start = time.perf_counter()
            for _ in range(resolves):
                env.reset()
            reset_ms = (time.perf_counter() - start) / resolves * 1e3
        finally:
            env.close()
        return {"cached_resolve_ms": cached * 1e3, "uncached_resolve_ms": uncached * 1e3,
                "cached_reset_ms": reset_ms, "speedup": uncached / cached}

    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_table("ablation_cache", "Ablation: benchmark cache", [
        f"resolve with cache:    {results['cached_resolve_ms']:.3f} ms",
        f"resolve without cache: {results['uncached_resolve_ms']:.3f} ms",
        f"reset (warm cache):    {results['cached_reset_ms']:.3f} ms",
        f"speedup from cache:    {results['speedup']:.1f}x",
    ])
    save_results("ablation_cache", results)
    # A cached resolution is a dict hit; an uncached one regenerates and
    # re-ingests the program. Anything under an order of magnitude means the
    # cache stopped short-circuiting that work.
    assert results["speedup"] > 10.0


def test_ablation_fork_vs_replay_backtracking(benchmark):
    prefix_length = 60
    candidates = int(16 * bench_scale())

    def run_experiment():
        rng = random.Random(0)
        env = repro.make("llvm-v0", benchmark="benchmark://cbench-v1/gsm",
                         reward_space="IrInstructionCount")
        try:
            env.reset()
            prefix = [rng.randrange(env.action_space.n) for _ in range(prefix_length)]
            env.multistep(prefix)

            # Strategy A: evaluate candidate next-actions in forks.
            start = time.perf_counter()
            for _ in range(candidates):
                fork = env.fork()
                fork.step(rng.randrange(env.action_space.n))
                fork.close()
            fork_time = (time.perf_counter() - start) / candidates

            # Strategy B: evaluate each candidate by replaying the prefix.
            start = time.perf_counter()
            for _ in range(candidates):
                env.reset()
                env.multistep(prefix + [rng.randrange(env.action_space.n)])
            replay_time = (time.perf_counter() - start) / candidates
        finally:
            env.close()
        return {"fork_ms": fork_time * 1e3, "replay_ms": replay_time * 1e3,
                "speedup": replay_time / fork_time}

    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_table("ablation_fork", "Ablation: fork() vs replay for backtracking", [
        f"candidate evaluation via fork():  {results['fork_ms']:.3f} ms",
        f"candidate evaluation via replay:  {results['replay_ms']:.3f} ms",
        f"speedup from fork():              {results['speedup']:.1f}x",
    ])
    save_results("ablation_fork", results)
    assert results["speedup"] > 1.05
