"""Vectorized environment pool throughput: steps/sec vs. worker count.

Companion to the Table II efficiency results: measures the aggregate step
throughput of a :class:`VecCompilerEnv` on the LLVM environment as the pool
grows, under both execution backends. As in the batched-step experiments, a
simulated per-call transport latency (``ConnectionOpts.rpc_latency``) models
the RPC round trip of the real client/server deployment; the thread-pool
backend overlaps those round trips across workers, so its throughput scales
with the pool size while the serial backend's stays flat.

Run as a script for a quick smoke reading::

    PYTHONPATH=src python benchmarks/test_vector_throughput.py --workers 2
"""

import random
import time

from conftest import bench_scale, save_results

import repro
from repro.core.service.connection import ConnectionOpts
from repro.core.vector import VecCompilerEnv

BENCHMARK = "cbench-v1/crc32"
# Simulated RPC round-trip latency, in the range the paper measures for its
# gRPC transport (single-digit milliseconds per call).
RPC_LATENCY = 0.005


def _measure_throughput(backend: str, n: int, rounds: int, rpc_latency: float = RPC_LATENCY):
    """Aggregate steps/sec of an n-worker pool over ``rounds`` batched steps."""
    rng = random.Random(0)
    env = repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
        connection_opts=ConnectionOpts(rpc_latency=rpc_latency),
    )
    with VecCompilerEnv(env, n=n, backend=backend) as vec:
        vec.reset()
        num_actions = vec.action_space.n
        start = time.perf_counter()
        for _ in range(rounds):
            actions = [rng.randrange(num_actions) for _ in range(n)]
            vec.step(actions)
        elapsed = time.perf_counter() - start
    return {
        "backend": backend,
        "workers": n,
        "steps": rounds * n,
        "walltime_s": elapsed,
        "steps_per_sec": (rounds * n) / elapsed,
    }


def run_sweep(worker_counts, rounds):
    results = []
    for n in worker_counts:
        for backend in ("serial", "thread"):
            results.append(_measure_throughput(backend, n, rounds))
    return results


def test_vector_throughput():
    rounds = max(5, int(20 * bench_scale()))
    results = run_sweep(worker_counts=(1, 2, 4), rounds=rounds)
    by_key = {(r["backend"], r["workers"]): r["steps_per_sec"] for r in results}
    save_results(
        "vector_throughput",
        {
            "rpc_latency_s": RPC_LATENCY,
            "rounds": rounds,
            "results": results,
            "thread_vs_serial_speedup_at_4": by_key[("thread", 4)] / by_key[("serial", 4)],
        },
    )

    # Sanity: every configuration actually stepped.
    assert all(r["steps_per_sec"] > 0 for r in results)
    # Acceptance criterion: with the RPC round trip modelled, the thread-pool
    # backend overlaps transport latency and beats serial by >= 1.5x at n=4.
    assert by_key[("thread", 4)] >= 1.5 * by_key[("serial", 4)], (
        f"ThreadPoolBackend at n=4 is only "
        f"{by_key[('thread', 4)] / by_key[('serial', 4)]:.2f}x SerialBackend"
    )


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2, help="Pool size to measure")
    parser.add_argument("--rounds", type=int, default=10, help="Batched steps per backend")
    args = parser.parse_args(argv)
    for backend in ("serial", "thread"):
        result = _measure_throughput(backend, args.workers, args.rounds)
        print(
            f"{backend:>6} backend, n={result['workers']}: "
            f"{result['steps_per_sec']:8.1f} steps/sec "
            f"({result['steps']} steps in {result['walltime_s']:.2f}s)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
