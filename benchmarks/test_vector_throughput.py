"""Vectorized environment pool throughput: steps/sec vs. worker count.

Companion to the Table II efficiency results: measures the aggregate step
throughput of a :class:`VecCompilerEnv` on the LLVM environment as the pool
grows, under every execution backend. As in the batched-step experiments, a
simulated per-call transport latency (``ConnectionOpts.rpc_latency``) models
the RPC round trip of the real client/server deployment; the thread-pool and
process-pool backends overlap those round trips across workers, so their
throughput scales with the pool size while the serial backend's stays flat.
The process backend additionally records the steps/sec of IMPALA and Ape-X
training end-to-end through ``train_agent_vec`` on auto-reset rollouts, and
of distributed actor/learner training (``DistributedTrainer``, the real
Ape-X/IMPALA topology: actor subprocesses feeding a central learner) next
to those single-process numbers.

Run as a script for a quick smoke reading::

    PYTHONPATH=src python benchmarks/test_vector_throughput.py --workers 2
"""

import gc
import os
import random
import statistics
import sys
import time

# The gateway benchmark spawns a child that re-imports this module; in a
# whole-repo pytest run the child's inherited sys.path can resolve bare
# ``conftest`` to tests/conftest.py instead of ours, so pin this directory
# to the front before importing.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import bench_scale, save_results

import repro
from repro.core.service.connection import ConnectionOpts
from repro.core.vector import VecCompilerEnv

BENCHMARK = "cbench-v1/crc32"
# Simulated RPC round-trip latency, in the range the paper measures for its
# gRPC transport (single-digit milliseconds per call).
RPC_LATENCY = 0.005
BACKENDS = ("serial", "thread", "process")
# Budget for the gateway proxy hop as a multiple of direct-to-daemon
# per-worker-step latency. The hop's absolute cost (decode, session-id
# translation, re-encode: ~0.1ms) has not moved, but the per-step compute it
# is measured against halved when the session gained version-keyed
# observation memoization — the same tax is a larger fraction of a cheaper
# step, so the ratio budget is wider than the pre-memoization 1.3x.
GATEWAY_OVERHEAD_BUDGET = 1.7


def _measure_throughput(backend: str, n: int, rounds: int, rpc_latency: float = RPC_LATENCY):
    """Aggregate steps/sec of an n-worker pool over ``rounds`` batched steps."""
    rng = random.Random(0)
    env = repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
        connection_opts=ConnectionOpts(rpc_latency=rpc_latency),
    )
    with VecCompilerEnv(env, n=n, backend=backend) as vec:
        vec.reset()
        num_actions = vec.action_space.n
        start = time.perf_counter()
        for _ in range(rounds):
            actions = [rng.randrange(num_actions) for _ in range(n)]
            vec.step(actions)
        elapsed = time.perf_counter() - start
    return {
        "backend": backend,
        "workers": n,
        "steps": rounds * n,
        "walltime_s": elapsed,
        "steps_per_sec": (rounds * n) / elapsed,
    }


def _measure_rl_throughput(agent_name: str, backend: str, n: int, episodes: int,
                           episode_length: int = 5):
    """Steps/sec of an agent training through train_agent_vec on auto-reset
    rollouts collected from an n-worker pool."""
    from repro.rl import ApexDQNAgent, ImpalaAgent
    from repro.rl.trainer import (
        AUTOPHASE_ACTION_SUBSET,
        make_vec_rl_environment,
        observation_dim,
        train_agent_vec,
    )

    num_actions = len(AUTOPHASE_ACTION_SUBSET)
    agent = {"impala": ImpalaAgent, "apex": ApexDQNAgent}[agent_name](
        obs_dim=observation_dim("Autophase", True, num_actions),
        num_actions=num_actions,
        seed=0,
    )
    env = repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        reward_space="IrInstructionCountNorm",
        connection_opts=ConnectionOpts(rpc_latency=RPC_LATENCY),
    )
    vec = make_vec_rl_environment(
        env, n=n, backend=backend, episode_length=episode_length, auto_reset=True
    )
    try:
        start = time.perf_counter()
        result = train_agent_vec(agent, vec, [BENCHMARK], episodes=episodes)
        elapsed = time.perf_counter() - start
    finally:
        vec.close()
    steps = len(result.episode_rewards) * episode_length
    return {
        "agent": agent_name,
        "backend": backend,
        "workers": n,
        "episodes": len(result.episode_rewards),
        "steps": steps,
        "walltime_s": elapsed,
        "steps_per_sec": steps / elapsed,
    }


def _measure_distributed_throughput(agent_name: str, actors: int, episodes: int,
                                    episode_length: int = 5):
    """Steps/sec of multi-process actor/learner training (DistributedTrainer)."""
    from repro.rl.distributed import DistributedTrainer

    trainer = DistributedTrainer(
        agent=agent_name,
        env_id="llvm-v0",
        make_kwargs={
            "benchmark": BENCHMARK,
            "reward_space": "IrInstructionCountNorm",
            "connection_opts": ConnectionOpts(rpc_latency=RPC_LATENCY),
        },
        num_actors=actors,
        envs_per_actor=2,
        episode_length=episode_length,
        seed=0,
    )
    start = time.perf_counter()
    result = trainer.train([BENCHMARK], episodes=episodes)
    elapsed = time.perf_counter() - start
    steps = trainer.stats["total_env_steps"]
    return {
        "agent": agent_name,
        "actors": actors,
        "envs_per_actor": trainer.stats["envs_per_actor"],
        "episodes": len(result.episode_rewards),
        "steps": steps,
        "items_learned": trainer.stats["items_learned"],
        "walltime_s": elapsed,
        "steps_per_sec": steps / elapsed,
    }


def _measure_transport_latency(steps: int):
    """Mean per-step wall time: in-process runtime vs. a socket daemon.

    Measures the *real* overhead of the out-of-process deployment (pickling,
    framing, TCP round trip, daemon dispatch) with no simulated latency, so
    the transport tax is tracked release over release. The result cache is
    disabled on both sides: the two phases replay the same seeded action
    sequence, so a shared cache would hand the second phase free hits and
    the comparison would measure memoization, not transport.
    """
    from repro.core.service.runtime.server import make_env_server

    def mean_step_seconds(env):
        env.reset()
        num_actions = env.action_space.n
        rng = random.Random(0)
        start = time.perf_counter()
        for _ in range(steps):
            env.step(rng.randrange(num_actions))
        elapsed = time.perf_counter() - start
        env.close()
        return elapsed / steps

    in_process = mean_step_seconds(
        repro.make(
            "llvm-v0",
            benchmark=BENCHMARK,
            reward_space="IrInstructionCount",
            result_cache=False,
        )
    )
    server = make_env_server(
        "llvm-v0", port=0, session_timeout=None, result_cache=False
    ).start()
    try:
        socket_step = mean_step_seconds(
            repro.make(
                "llvm-v0",
                benchmark=BENCHMARK,
                reward_space="IrInstructionCount",
                service_url=server.url,
            )
        )
    finally:
        server.shutdown()
    return {
        "steps": steps,
        "in_process_step_ms": in_process * 1e3,
        "socket_step_ms": socket_step * 1e3,
        "socket_overhead_ms": (socket_step - in_process) * 1e3,
        "socket_vs_in_process": socket_step / in_process if in_process else None,
    }


def _measure_verifier_overhead(steps: int):
    """Mean per-step wall time with REPRO_VERIFY_IR off vs. on.

    Quantifies the cost of verify-after-every-pass (a dominator-tree
    construction plus type/dominance checks per function per step), so the
    README's "measured overhead" claim tracks the implementation.
    """

    def mean_step_seconds(verify_ir):
        env = repro.make("llvm-v0", benchmark=BENCHMARK, verify_ir=verify_ir)
        env.reset()
        num_actions = env.action_space.n
        rng = random.Random(0)
        start = time.perf_counter()
        for _ in range(steps):
            env.step(rng.randrange(num_actions))
        elapsed = time.perf_counter() - start
        env.close()
        return elapsed / steps

    verify_off = mean_step_seconds(False)
    verify_on = mean_step_seconds(True)
    return {
        "steps": steps,
        "verify_off_step_ms": verify_off * 1e3,
        "verify_on_step_ms": verify_on * 1e3,
        "verify_on_vs_off": verify_on / verify_off if verify_off else None,
    }


def _measure_vec_transport_latency(rounds: int, n: int = 4):
    """Per-worker-step wall time of an n-worker pool over a socket daemon.

    Compares the batched+multiplexed path (the whole pool on one shared
    connection, each pool step a single ``step_sessions`` round trip)
    against the one-RPC-per-worker path (each worker on a dedicated
    connection, one ``step`` round trip per worker per pool step).

    The daemon's result cache is off: both pools replay the same seeded
    trajectories against the same daemon, so with the cache on whichever
    pool runs second gets its compiler work for free and the comparison
    flips from transport shape to cache warmth.
    """
    from repro.core.service.runtime.server import make_env_server

    def make_daemon_env(url):
        return repro.make(
            "llvm-v0",
            benchmark=BENCHMARK,
            reward_space="IrInstructionCount",
            service_url=url,
        )

    def mean_worker_step_seconds(vec):
        rng = random.Random(0)
        num_actions = vec.action_space.n
        vec.reset()
        start = time.perf_counter()
        for _ in range(rounds):
            vec.step([rng.randrange(num_actions) for _ in range(vec.num_envs)])
        return (time.perf_counter() - start) / (rounds * vec.num_envs)

    server = make_env_server(
        "llvm-v0", port=0, session_timeout=None, result_cache=False
    ).start()
    try:
        with VecCompilerEnv(make_daemon_env(server.url), n=n, backend="thread") as vec:
            assert len({id(w.service) for w in vec.workers}) == 1
            batched = mean_worker_step_seconds(vec)
        with VecCompilerEnv(
            make_daemon_env(server.url), n=n, backend="thread", use_batched_step=False
        ) as vec:
            # The pre-batching deployment shape: every worker fans out its
            # own step() RPC on a private connection.
            for worker in vec.workers[1:]:
                worker.use_dedicated_connection()
            per_rpc = mean_worker_step_seconds(vec)
    finally:
        server.shutdown()
    return {
        "workers": n,
        "rounds": rounds,
        "batched_step_ms": batched * 1e3,
        "per_rpc_step_ms": per_rpc * 1e3,
        "batched_vs_per_rpc": batched / per_rpc if per_rpc else None,
    }


def _measure_result_cache(sequences: int = 8, length: int = 10, repeats: int = 4):
    """Per-step wall time and hit rate of the result cache on a
    repeated-prefix random-search workload.

    Random search (and population-based autotuning) re-walks the same action
    prefixes across episodes. The workload replays ``sequences`` seeded
    action sequences: one cold pass populates the (benchmark, action-prefix)
    store, then ``repeats`` warm passes replay identical trajectories — every
    warm step is served from the cache without constructing a session or
    running a pass. The uncached run replays the same warm-phase trajectories
    with the cache disabled, so ``speedup`` is the per-step tax the cache
    removes from prefix re-walks.
    """
    rng = random.Random(0)

    def run_passes(env, seqs, passes):
        steps = 0
        start = time.perf_counter()
        for _ in range(passes):
            for seq in seqs:
                env.reset()
                for action in seq:
                    env.step(action)
                    steps += 1
        return (time.perf_counter() - start) / steps

    env_kwargs = dict(
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
    )
    env = repro.make("llvm-v0", **env_kwargs)
    num_actions = env.action_space.n
    seqs = [
        [rng.randrange(num_actions) for _ in range(length)] for _ in range(sequences)
    ]
    cold = run_passes(env, seqs, 1)
    cached = run_passes(env, seqs, repeats)
    stats = env.service.runtime.result_cache.stats()
    env.close()

    uncached_env = repro.make("llvm-v0", result_cache=False, **env_kwargs)
    uncached = run_passes(uncached_env, seqs, repeats)
    uncached_env.close()
    return {
        "sequences": sequences,
        "sequence_length": length,
        "repeats": repeats,
        "cold_step_ms": cold * 1e3,
        "cached_step_ms": cached * 1e3,
        "uncached_step_ms": uncached * 1e3,
        "speedup": uncached / cached if cached else None,
        "hit_rate": stats["hit_rate"],
        "hits": stats["hits"],
        "misses": stats["misses"],
        "size_in_bytes": stats["size_in_bytes"],
    }


def _measure_failover_recovery(heartbeat_interval: float = 0.25):
    """Detection latency and time-to-first-successful-step after a daemon
    SIGKILL, heartbeat-driven vs call-triggered.

    The heartbeat run measures the proactive path: the gateway's
    HealthMonitor notices the corpse and re-homes its sessions with *no
    client RPC in flight* — detection latency is how long that took, and
    time-to-first-step adds one post-recovery step (which finds the session
    already replayed). The call-triggered run disables the monitor, so the
    client's own next step pays for detection, failover, and replay inline;
    its detection latency IS its time-to-first-step.
    """
    import signal as signal_module

    from repro.core.service.connection import clear_spaces_cache
    from repro.core.service.gateway import ServiceGateway

    def one_run(heartbeat: bool):
        gateway = ServiceGateway(
            env_id="llvm-v0",
            daemons=2,
            heartbeat_interval=heartbeat_interval if heartbeat else None,
        ).start()
        env = repro.make(
            "llvm-v0", benchmark=f"benchmark://{BENCHMARK}", service_url=gateway.url
        )
        try:
            env.reset()
            env.step(0)
            victim = next(
                d
                for d in gateway.live_daemons()
                if any(r.daemon is d for r in gateway._sessions.values())
            )
            os.kill(victim.pid, signal_module.SIGKILL)
            killed_at = time.monotonic()
            if heartbeat:
                while gateway.failovers == 0:
                    time.sleep(0.002)
                detection_s = time.monotonic() - killed_at
                # Detection (failovers flips) precedes the replay of the
                # victim's sessions; keep hands off the client until the
                # monitor has re-homed them, so the recovery is provably
                # heartbeat-driven, not triggered by our own step.
                replay_deadline = time.monotonic() + 10.0
                while (
                    gateway.rehomed_sessions == 0
                    and time.monotonic() < replay_deadline
                ):
                    time.sleep(0.002)
            env.step(0)
            recovery_s = time.monotonic() - killed_at
            if not heartbeat:
                detection_s = recovery_s
            return {
                "detection_s": detection_s,
                "time_to_first_step_s": recovery_s,
                "rehomed_sessions": gateway.rehomed_sessions,
            }
        finally:
            env.close()
            gateway.shutdown()
            clear_spaces_cache()

    return {
        "heartbeat_interval_s": heartbeat_interval,
        "detection_slo_s": 2 * heartbeat_interval,
        "heartbeat": one_run(True),
        "call_triggered": one_run(False),
    }


def check_failover_recovery(slack_s: float = 1.0) -> int:
    """CI gate: a SIGKILLed daemon must be detected by the heartbeat
    monitor — no client RPC in flight — within 2 heartbeat intervals
    (plus scheduling slack for loaded runners), and the next client step
    must succeed on the re-homed session."""
    fresh = _measure_failover_recovery()
    slo = fresh["detection_slo_s"] + slack_s
    heartbeat = fresh["heartbeat"]
    print(
        f"failover recovery at {fresh['heartbeat_interval_s']}s heartbeat: "
        f"detected in {heartbeat['detection_s']:.3f}s "
        f"(SLO {fresh['detection_slo_s']:.2f}s + {slack_s:.1f}s slack), "
        f"first step {heartbeat['time_to_first_step_s']:.3f}s after kill; "
        f"call-triggered path recovered in "
        f"{fresh['call_triggered']['time_to_first_step_s']:.3f}s"
    )
    if heartbeat["detection_s"] > slo:
        print(
            f"FAIL: heartbeat detection took {heartbeat['detection_s']:.3f}s, "
            f"over the {slo:.2f}s budget"
        )
        return 1
    if heartbeat["rehomed_sessions"] < 1:
        print("FAIL: the victim's session was not re-homed")
        return 1
    print("OK: failover recovery within SLO")
    return 0


def _gateway_bench_main(pipe):
    """Child-process entry: host a 1-daemon gateway, report both URLs."""
    import signal

    from repro.core.service.gateway import ServiceGateway

    # Result cache off: the benchmark alternates identical action batches
    # between the direct and proxied pools on this one daemon, so a shared
    # cache would give whichever pool steps second free hits and bias the
    # gateway-tax ratio.
    gateway = ServiceGateway(
        env_id="llvm-v0", daemons=1, make_kwargs={"result_cache": False}
    ).start()
    signal.signal(signal.SIGTERM, lambda *_: gateway.request_shutdown())
    pipe.send((gateway.url, gateway.live_daemons()[0].url))
    pipe.close()
    try:
        gateway.serve_forever()
    finally:
        gateway.shutdown()


def _measure_gateway_overhead(rounds: int, n: int = 4):
    """Per-worker-step wall time of an n-worker pool: direct-to-daemon vs
    through a session-routing gateway fronting that same daemon tier.

    Isolates the gateway tax (one extra proxy hop: decode, session-id
    translation, re-encode) on the batched stepping path. The fleet is a
    single daemon, reached both ways, so the compiler work is identical —
    and the gateway runs in its own process, as deployed, so its routing
    CPU is not serialized onto this process's GIL.
    """
    import multiprocessing as mp

    def open_pool(url):
        # Same step shape as the throughput sweep (and as RL training):
        # observation + reward per step, not an observation-less ping.
        env = repro.make(
            "llvm-v0",
            benchmark=BENCHMARK,
            observation_space="Autophase",
            reward_space="IrInstructionCount",
            service_url=url,
        )
        vec = VecCompilerEnv(env, n=n, backend="thread")
        vec.reset()
        return vec

    # Spawn, not fork: the gateway must run on a fresh interpreter heap, as
    # deployed, not on a copy of this benchmark process's accumulated heap.
    ctx = mp.get_context("spawn")
    parent_pipe, child_pipe = ctx.Pipe()
    # Not daemonic: the gateway process spawns the daemon as its own child,
    # and its SIGTERM handler shuts the whole tree down on terminate().
    proc = ctx.Process(target=_gateway_bench_main, args=(child_pipe,))
    proc.start()
    child_pipe.close()
    if not parent_pipe.poll(120):
        proc.terminate()
        raise RuntimeError("Benchmark gateway did not report URLs within 120s")
    try:
        gateway_url, daemon_url = parent_pipe.recv()
    except EOFError:
        proc.join(timeout=10)
        raise RuntimeError(
            f"Benchmark gateway died before reporting URLs "
            f"(exit code {proc.exitcode})"
        ) from None
    # Both pools stay open and alternate batch by batch, with identical
    # action trajectories, so each pair of samples sees the same
    # instantaneous background load — phase-separated runs let load drift
    # masquerade as gateway tax (or hide it). Within a phase, medians drop
    # single-core scheduler spikes; across phases, each path keeps its best
    # (least-contended) median, timeit's min-of-repeats applied per path —
    # scheduler noise only ever adds time. GC is paused so client-heap
    # churn from earlier sweeps taxes neither path.
    gc.collect()
    gc.disable()
    direct_vec = proxied_vec = None
    try:
        direct_vec = open_pool(daemon_url)
        proxied_vec = open_pool(gateway_url)
        rng = random.Random(0)
        num_actions = direct_vec.action_space.n
        for _ in range(3):  # warm both paths
            actions = [rng.randrange(num_actions) for _ in range(n)]
            direct_vec.step(actions)
            proxied_vec.step(actions)
        direct = proxied = float("inf")
        for _ in range(3):
            direct_times, proxied_times = [], []
            for _ in range(rounds):
                actions = [rng.randrange(num_actions) for _ in range(n)]
                start = time.perf_counter()
                direct_vec.step(actions)
                direct_times.append(time.perf_counter() - start)
                start = time.perf_counter()
                proxied_vec.step(actions)
                proxied_times.append(time.perf_counter() - start)
            direct = min(direct, statistics.median(direct_times) / n)
            proxied = min(proxied, statistics.median(proxied_times) / n)
    finally:
        gc.enable()
        for vec in (direct_vec, proxied_vec):
            if vec is not None:
                try:
                    vec.close()
                except Exception:  # noqa: BLE001 - teardown best-effort
                    pass
        proc.terminate()
        proc.join(timeout=30)
    return {
        "workers": n,
        "rounds": rounds,
        "direct_step_ms": direct * 1e3,
        "gateway_step_ms": proxied * 1e3,
        "gateway_vs_direct": proxied / direct if direct else None,
    }


def run_sweep(worker_counts, rounds):
    results = []
    for n in worker_counts:
        for backend in BACKENDS:
            results.append(_measure_throughput(backend, n, rounds))
    return results


def test_vector_throughput():
    rounds = max(5, int(20 * bench_scale()))
    results = run_sweep(worker_counts=(1, 2, 4), rounds=rounds)
    by_key = {(r["backend"], r["workers"]): r["steps_per_sec"] for r in results}
    rl_episodes = max(2, int(4 * bench_scale()))
    rl_results = [
        _measure_rl_throughput(agent, "process", n=2, episodes=rl_episodes)
        for agent in ("impala", "apex")
    ]
    distributed_results = [
        _measure_distributed_throughput(agent, actors=2, episodes=rl_episodes)
        for agent in ("impala", "apex")
    ]
    transport_latency = _measure_transport_latency(steps=max(20, int(50 * bench_scale())))
    verifier_overhead = _measure_verifier_overhead(steps=max(20, int(50 * bench_scale())))
    vec_latency = _measure_vec_transport_latency(rounds=max(10, int(25 * bench_scale())))
    transport_latency["vec_pool"] = vec_latency
    result_cache = _measure_result_cache()
    failover_recovery = _measure_failover_recovery()
    # The gateway comparison is the suite's most scheduling-sensitive
    # measurement (three processes hand off per round trip on however many
    # cores the runner has), and it runs last, on a box heated by every
    # benchmark before it. One retry with a fresh gateway absorbs a
    # noise-spoiled run; a genuine overhead regression fails both attempts.
    for attempt in (0, 1):
        try:
            gateway_overhead = _measure_gateway_overhead(
                rounds=max(10, int(25 * bench_scale()))
            )
        except RuntimeError:
            if attempt:
                raise
            continue  # Gateway startup lost to a transient; once more, fresh.
        if gateway_overhead["gateway_vs_direct"] <= GATEWAY_OVERHEAD_BUDGET:
            break
    # The batched socket path relative to the in-process baseline of the
    # same run: the load-independent number the CI regression gate tracks.
    transport_latency["batched_vs_in_process"] = (
        vec_latency["batched_step_ms"] / transport_latency["in_process_step_ms"]
    )
    save_results(
        "vector_throughput",
        {
            "rpc_latency_s": RPC_LATENCY,
            "rounds": rounds,
            "results": results,
            "thread_vs_serial_speedup_at_4": by_key[("thread", 4)] / by_key[("serial", 4)],
            "process_vs_serial_speedup_at_4": by_key[("process", 4)] / by_key[("serial", 4)],
            "rl_agents": {r["agent"]: r for r in rl_results},
            "distributed_rl_agents": {r["agent"]: r for r in distributed_results},
            "transport_latency": transport_latency,
            "gateway_overhead": gateway_overhead,
            "verifier_overhead": verifier_overhead,
            "result_cache": result_cache,
            "failover_recovery": failover_recovery,
        },
    )
    # Acceptance criterion: the heartbeat monitor detects a SIGKILLed
    # daemon — with no client RPC in flight — within 2 heartbeat intervals
    # (plus scheduling slack), and the re-homed session serves the next step.
    assert failover_recovery["heartbeat"]["detection_s"] < (
        failover_recovery["detection_slo_s"] + 1.0
    ), (
        f"heartbeat failover detection took "
        f"{failover_recovery['heartbeat']['detection_s']:.3f}s, over the "
        f"{failover_recovery['detection_slo_s']:.2f}s SLO"
    )
    assert failover_recovery["heartbeat"]["rehomed_sessions"] >= 1
    # Acceptance criteria: on the repeated-prefix workload the result cache
    # serves at least 80% of queries and removes at least 5x of the per-step
    # cost relative to the same trajectories with the cache disabled.
    assert result_cache["hit_rate"] >= 0.8, (
        f"result cache hit rate {result_cache['hit_rate']:.0%} on the "
        f"repeated-prefix workload, expected >= 80%"
    )
    assert result_cache["speedup"] >= 5.0, (
        f"cached stepping ({result_cache['cached_step_ms']:.3f}ms/step) is only "
        f"{result_cache['speedup']:.2f}x uncached "
        f"({result_cache['uncached_step_ms']:.3f}ms/step), expected >= 5x"
    )
    # Sanity: verified stepping still steps (the mode is a debug tool, so it
    # only has to be affordable, not free).
    assert verifier_overhead["verify_on_step_ms"] > 0

    # Sanity: every configuration actually stepped, and the socket transport
    # round-tripped real steps through the daemon.
    assert transport_latency["socket_step_ms"] > 0
    # Acceptance criterion: batched+multiplexed stepping at n=4 beats the
    # one-RPC-per-worker deployment shape on per-worker-step latency.
    assert vec_latency["batched_step_ms"] < vec_latency["per_rpc_step_ms"], (
        f"batched stepping ({vec_latency['batched_step_ms']:.3f}ms/step) is not "
        f"faster than one RPC per worker ({vec_latency['per_rpc_step_ms']:.3f}ms/step)"
    )
    # Acceptance criterion: routing through the gateway costs no more than
    # GATEWAY_OVERHEAD_BUDGET x the direct-to-daemon per-worker-step latency
    # at n=4.
    assert gateway_overhead["gateway_vs_direct"] <= GATEWAY_OVERHEAD_BUDGET, (
        f"gateway stepping ({gateway_overhead['gateway_step_ms']:.3f}ms/step) is "
        f"{gateway_overhead['gateway_vs_direct']:.2f}x direct-to-daemon "
        f"({gateway_overhead['direct_step_ms']:.3f}ms/step), budget "
        f"{GATEWAY_OVERHEAD_BUDGET}x"
    )
    assert all(r["steps_per_sec"] > 0 for r in results)
    assert all(r["steps_per_sec"] > 0 and r["episodes"] >= rl_episodes for r in rl_results)
    assert all(
        r["steps_per_sec"] > 0 and r["episodes"] == rl_episodes for r in distributed_results
    )
    # Acceptance criterion: with the RPC round trip modelled, the concurrent
    # backends overlap transport latency and beat serial by >= 1.5x at n=4.
    for backend in ("thread", "process"):
        assert by_key[(backend, 4)] >= 1.5 * by_key[("serial", 4)], (
            f"{backend} backend at n=4 is only "
            f"{by_key[(backend, 4)] / by_key[('serial', 4)]:.2f}x SerialBackend"
        )


def check_transport_regression(max_regression: float = 2.0) -> int:
    """CI gate: fail when batched socket stepping regresses vs the recorded
    baseline by more than ``max_regression``.

    Both the fresh reading and the recorded one are expressed as a ratio to
    the in-process per-step latency *of the same run*, so the comparison is
    robust to slower or busier CI machines — only a genuine increase in
    transport overhead (framing, round trips, daemon dispatch) trips it.
    """
    import json
    from pathlib import Path

    results_path = Path(__file__).parent / "results" / "vector_throughput.json"
    recorded = json.loads(results_path.read_text())["transport_latency"]
    recorded_ratio = recorded.get("batched_vs_in_process")
    if recorded_ratio is None:
        # Results predate batched stepping: the single-env socket ratio is
        # the only recorded in-process-relative baseline.
        recorded_ratio = recorded["socket_vs_in_process"]
    fresh = _measure_transport_latency(steps=50)
    vec = _measure_vec_transport_latency(rounds=25)
    fresh_ratio = vec["batched_step_ms"] / fresh["in_process_step_ms"]
    print(
        f"batched socket stepping at n={vec['workers']}: "
        f"{vec['batched_step_ms']:.3f}ms per worker-step, "
        f"{fresh_ratio:.2f}x in-process (recorded {recorded_ratio:.2f}x, "
        f"budget {max_regression:.1f}x recorded)"
    )
    if fresh_ratio > max_regression * recorded_ratio:
        print(
            f"FAIL: transport latency regressed more than {max_regression:.1f}x "
            f"against the recorded in-process-relative baseline"
        )
        return 1
    print("OK: transport latency within budget")
    return 0


def check_result_cache_regression(
    min_speedup: float = 5.0, min_hit_rate: float = 0.8
) -> int:
    """CI gate: fail when the result cache stops paying for itself.

    The floors are absolute, not baseline-relative: both the speedup (the
    ratio of two per-step timings from the same run) and the hit rate are
    machine-speed-independent, so a breach means the caching path itself
    regressed — entries no longer hit, or a hit stopped being cheap.
    """
    fresh = _measure_result_cache()
    print(
        f"result cache on the repeated-prefix workload: cached "
        f"{fresh['cached_step_ms']:.3f}ms/step vs uncached "
        f"{fresh['uncached_step_ms']:.3f}ms/step ({fresh['speedup']:.1f}x, "
        f"hit rate {fresh['hit_rate']:.0%}; floors {min_speedup:.0f}x, "
        f"{min_hit_rate:.0%})"
    )
    if fresh["speedup"] < min_speedup or fresh["hit_rate"] < min_hit_rate:
        print(
            f"FAIL: result cache below the {min_speedup:.0f}x speedup / "
            f"{min_hit_rate:.0%} hit-rate floor on the repeated-prefix workload"
        )
        return 1
    print("OK: result cache within budget")
    return 0


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2, help="Pool size to measure")
    parser.add_argument("--rounds", type=int, default=10, help="Batched steps per backend")
    parser.add_argument(
        "--check-transport-regression",
        action="store_true",
        help="Measure transport latency and exit non-zero if the batched "
        "socket stepping path regressed by more than 2x against the "
        "recorded in-process-relative baseline",
    )
    parser.add_argument(
        "--check-result-cache",
        action="store_true",
        help="Measure the result cache on a repeated-prefix workload and "
        "exit non-zero if it falls below the 5x speedup or 80%% hit-rate "
        "floor",
    )
    parser.add_argument(
        "--measure-verifier-overhead",
        action="store_true",
        help="Measure per-step overhead of REPRO_VERIFY_IR and exit",
    )
    parser.add_argument(
        "--check-failover-recovery",
        action="store_true",
        help="SIGKILL a gateway daemon and exit non-zero unless the "
        "heartbeat monitor detects it within 2 heartbeat intervals (plus "
        "slack) with no client RPC in flight and re-homes its session",
    )
    args = parser.parse_args(argv)
    if args.check_transport_regression:
        return check_transport_regression()
    if args.check_result_cache:
        return check_result_cache_regression()
    if args.check_failover_recovery:
        return check_failover_recovery()
    if args.measure_verifier_overhead:
        overhead = _measure_verifier_overhead(steps=50)
        print(
            f"verify-after-every-pass: off {overhead['verify_off_step_ms']:.3f}ms/step, "
            f"on {overhead['verify_on_step_ms']:.3f}ms/step "
            f"({overhead['verify_on_vs_off']:.2f}x)"
        )
        return 0
    for backend in BACKENDS:
        result = _measure_throughput(backend, args.workers, args.rounds)
        print(
            f"{backend:>7} backend, n={result['workers']}: "
            f"{result['steps_per_sec']:8.1f} steps/sec "
            f"({result['steps']} steps in {result['walltime_s']:.2f}s)"
        )
    for agent in ("impala", "apex"):
        result = _measure_rl_throughput(agent, "process", args.workers, episodes=2)
        print(
            f"{agent:>7} train [process], n={result['workers']}: "
            f"{result['steps_per_sec']:8.1f} steps/sec "
            f"({result['episodes']} episodes in {result['walltime_s']:.2f}s)"
        )
    for agent in ("impala", "apex"):
        result = _measure_distributed_throughput(agent, actors=args.workers, episodes=2)
        print(
            f"{agent:>7} train [distributed], actors={result['actors']}: "
            f"{result['steps_per_sec']:8.1f} steps/sec "
            f"({result['episodes']} episodes in {result['walltime_s']:.2f}s)"
        )
    latency = _measure_transport_latency(steps=20)
    print(
        f"transport step latency: in-process {latency['in_process_step_ms']:.3f}ms, "
        f"socket daemon {latency['socket_step_ms']:.3f}ms "
        f"(+{latency['socket_overhead_ms']:.3f}ms per call)"
    )
    vec_latency = _measure_vec_transport_latency(rounds=args.rounds)
    print(
        f"vec pool over socket daemon, n={vec_latency['workers']}: "
        f"batched {vec_latency['batched_step_ms']:.3f}ms/worker-step vs "
        f"one-RPC-per-worker {vec_latency['per_rpc_step_ms']:.3f}ms/worker-step "
        f"({vec_latency['batched_vs_per_rpc']:.2f}x)"
    )
    gateway_overhead = _measure_gateway_overhead(rounds=args.rounds)
    print(
        f"gateway overhead, n={gateway_overhead['workers']}: "
        f"direct {gateway_overhead['direct_step_ms']:.3f}ms/worker-step vs "
        f"gateway {gateway_overhead['gateway_step_ms']:.3f}ms/worker-step "
        f"({gateway_overhead['gateway_vs_direct']:.2f}x)"
    )
    result_cache = _measure_result_cache()
    print(
        f"result cache (repeated prefixes): cached "
        f"{result_cache['cached_step_ms']:.3f}ms/step vs uncached "
        f"{result_cache['uncached_step_ms']:.3f}ms/step "
        f"({result_cache['speedup']:.1f}x, hit rate {result_cache['hit_rate']:.0%})"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
