"""Table I: the LLVM benchmark dataset inventory.

Regenerates the CompilerGym column of Table I (number of benchmarks per
dataset) and records it to ``results/table1.json``. The paper's comparison
columns (Autophase: 100 benchmarks, MLGO: ~30k) are constants quoted from the
respective papers.
"""

from conftest import save_results, save_table

from repro.llvm.datasets.suites import make_llvm_datasets

# Benchmark counts used by the two prior works, from Table I.
PRIOR_WORK_COUNTS = {"Autophase": 100, "MLGO": 28_000 + 9 + 100}


def test_table1_dataset_inventory(benchmark):
    def build_inventory():
        datasets = make_llvm_datasets()
        return {
            dataset.name: (dataset.size if dataset.size else "generator (2^32 seeds)")
            for dataset in datasets.datasets()
        }

    inventory = benchmark(build_inventory)
    total = sum(size for size in inventory.values() if isinstance(size, int))
    rows = [f"{name:<35} {size}" for name, size in sorted(inventory.items())]
    rows.append(f"{'TOTAL (excluding generators)':<35} {total}")
    save_table("table1", "Table I: benchmarks per dataset (CompilerGym column)", rows)
    save_results("table1", {"datasets": inventory, "total_excluding_generators": total,
                            "prior_works": PRIOR_WORK_COUNTS})

    assert total > 1_000_000  # The paper's headline: millions of benchmarks.
    assert len(inventory) == 14
