"""Table IV: autotuning the LLVM phase ordering task.

Runs the five autotuning techniques (greedy, LaMCTS, Nevergrad-style
ensemble, OpenTuner-style baseline, random) on a subset of cBench for each of
the three optimization targets, and reports the geometric-mean improvement
over the compiler's default pipeline (-Oz for the size targets, -O3 for
runtime), plus the lines of code of each technique's implementation.

The paper gives each technique one hour per benchmark; this harness uses a
small per-benchmark step budget (scaled by REPRO_BENCH_SCALE). The shape to
reproduce: every technique beats the default pipelines given enough budget,
with the ensemble search (Nevergrad) strongest on code size, and the
improvements over -Oz being modest (single-digit percent in the paper).
"""

import inspect

from conftest import bench_scale, save_results, save_table

import repro
from repro.autotuning import (
    GreedySearch,
    LaMCTSSearch,
    NevergradEnsembleSearch,
    OpenTunerBaselineSearch,
    RandomSearch,
)
from repro.autotuning import greedy as greedy_module
from repro.autotuning import lamcts as lamcts_module
from repro.autotuning import nevergrad_like as nevergrad_module
from repro.autotuning import opentuner_like as opentuner_module
from repro.autotuning import random_search as random_module
from repro.util.statistics import geometric_mean

# A cBench subset that keeps the harness fast; REPRO_BENCH_SCALE >= 4 uses all 23.
SMALL_CBENCH = ["crc32", "qsort", "stringsearch", "dijkstra", "sha", "adpcm", "patricia", "bitcount"]

TARGETS = {
    # target -> (reward space, final metric observation, baseline observation, higher_is_better)
    "code size": ("IrInstructionCount", "IrInstructionCount", "IrInstructionCountOz"),
    "binary size": ("ObjectTextSizeBytes", "ObjectTextSizeBytes", "ObjectTextSizeOz"),
    "runtime": ("Runtime", "Runtime", None),
}


def _lines_of_code(module) -> int:
    """Count non-blank, non-comment source lines of a tuner implementation."""
    source = inspect.getsource(module)
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith(("#", '"""', "'''"))
    )


def _make_tuners():
    return {
        "Greedy Search": (GreedySearch(seed=0, max_episode_length=40), _lines_of_code(greedy_module)),
        "LaMCTS": (LaMCTSSearch(seed=0, rollout_length=60), _lines_of_code(lamcts_module)),
        "Nevergrad": (NevergradEnsembleSearch(seed=0, episode_length=60), _lines_of_code(nevergrad_module)),
        "OpenTuner": (OpenTunerBaselineSearch(seed=0, episode_length=60), _lines_of_code(opentuner_module)),
        "Random Search": (RandomSearch(seed=0, patience=30, max_episode_length=100), _lines_of_code(random_module)),
    }


def _evaluate_target(target: str, seconds_per_benchmark: float, benchmarks):
    reward_space, metric, baseline_obs = TARGETS[target]
    improvements = {name: [] for name in _make_tuners()}
    env = repro.make("llvm-v0", reward_space=reward_space)
    try:
        for program in benchmarks:
            uri = f"benchmark://cbench-v1/{program}"
            for name, (tuner, _loc) in _make_tuners().items():
                env.reset(benchmark=uri)
                # Equal wall-clock budget per technique, as in the paper
                # (which gave each one hour per benchmark).
                result = tuner.tune(env, max_seconds=seconds_per_benchmark)
                # Replay the best actions and read the final metric.
                env.reset(benchmark=uri)
                if result.best_actions:
                    env.multistep(result.best_actions)
                achieved = float(env.observation[metric])
                if baseline_obs is not None:
                    baseline = float(env.observation[baseline_obs])
                else:
                    # Runtime: baseline is the -O3 pipeline applied to a fresh state,
                    # median of 3 simulated measurements.
                    fork = env.fork()
                    try:
                        fork.reset(benchmark=uri)
                        fork.apply_baseline_pipeline("-O3")
                        samples = sorted(fork.observation["Runtime"] for _ in range(3))
                        baseline = samples[1]
                    finally:
                        fork.close()
                    samples = sorted(env.observation["Runtime"] for _ in range(3))
                    achieved = samples[1]
                improvements[name].append(baseline / achieved if achieved > 0 else 0.0)
    finally:
        env.close()
    return {name: geometric_mean(values) for name, values in improvements.items()}


def test_table4_autotuning_llvm_phase_ordering(benchmark):
    scale = bench_scale()
    seconds_per_benchmark = 1.5 * scale
    benchmarks = SMALL_CBENCH if scale < 4 else None

    def run_experiment():
        from repro.llvm.datasets.suites import CBENCH_PROGRAMS

        programs = benchmarks or sorted(CBENCH_PROGRAMS)
        return {
            target: _evaluate_target(target, seconds_per_benchmark, programs)
            for target in ("code size", "binary size", "runtime")
        }

    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines_of_code = {name: loc for name, (_t, loc) in _make_tuners().items()}
    rows = [
        f"{name:<15} LoC={lines_of_code[name]:>4}  "
        f"codesize={results['code size'][name]:.3f}x  "
        f"binsize={results['binary size'][name]:.3f}x  "
        f"runtime={results['runtime'][name]:.3f}x"
        for name in lines_of_code
    ]
    save_table("table4", "Table IV: LLVM phase-ordering autotuning (vs -Oz / -O3)", rows)
    save_results("table4", {"improvements": results, "lines_of_code": lines_of_code,
                            "seconds_per_benchmark": seconds_per_benchmark})

    # Shape checks: integration is low-effort (every technique is well under
    # the paper's 165-LoC ceiling), and within the reduced budget the best
    # technique approaches the -Oz pipeline's code size while none collapses.
    # (The paper's searches *exceed* -Oz given an hour per benchmark; see
    # EXPERIMENTS.md for the scaled-budget discussion.)
    assert all(loc < 200 for loc in lines_of_code.values())
    code_size = results["code size"]
    assert max(code_size.values()) >= 0.85 if scale >= 1 else max(code_size.values()) >= 0.7
    assert min(code_size.values()) >= 0.15
