"""Table II: computational efficiency of environment operations.

Compares the per-operation wall time of:

* the CompilerGym-style environment (incremental client/server steps),
* the same environment with batched multi-action steps,
* an Autophase-style recompile-from-scratch driver,
* an OpenTuner-style driver (recompile + per-search results database),

measuring service startup, environment initialization, and environment step
cost, exactly as Table II does. The headline ratios to check are: CompilerGym
steps are an order of magnitude faster than the recompile baselines, batching
gives a further improvement, and environment initialization is amortized O(1)
thanks to the benchmark cache.
"""

import random
import time

import pytest
from conftest import bench_scale, save_results, save_table

import repro
from repro.baselines import AutophaseStyleEnvironment, OpenTunerStyleEnvironment
from repro.core.service.proto import StepRequest
from repro.util.statistics import arithmetic_mean, percentile

BENCHMARKS = [
    "benchmark://cbench-v1/crc32",
    "benchmark://cbench-v1/qsort",
    "benchmark://cbench-v1/sha",
    "benchmark://cbench-v1/dijkstra",
    "benchmark://cbench-v1/adpcm",
]


def _summary(times):
    return {
        "p50_ms": percentile(times, 50) * 1e3,
        "p99_ms": percentile(times, 99) * 1e3,
        "mean_ms": arithmetic_mean(times) * 1e3,
    }


def _measure_compilergym(num_steps: int, batched: bool):
    rng = random.Random(0)
    start = time.perf_counter()
    # Table 2 measures raw incremental-step cost against recompile-per-step
    # baselines; the result cache would serve repeated reset prefixes from
    # memory and defer session construction into the first timed step,
    # distorting exactly the ratios this table reports.
    env = repro.make(
        "llvm-v0",
        observation_space="Autophase",
        reward_space="IrInstructionCount",
        result_cache=False,
    )
    startup = time.perf_counter() - start
    init_times, step_times = [], []
    try:
        steps_done = 0
        while steps_done < num_steps:
            benchmark = BENCHMARKS[steps_done % len(BENCHMARKS)]
            start = time.perf_counter()
            env.reset(benchmark=benchmark)
            init_times.append(time.perf_counter() - start)
            episode = min(20, num_steps - steps_done)
            if batched:
                actions = [rng.randrange(env.action_space.n) for _ in range(episode)]
                start = time.perf_counter()
                env.multistep(actions)
                elapsed = time.perf_counter() - start
                step_times.extend([elapsed / episode] * episode)
            else:
                for _ in range(episode):
                    action = rng.randrange(env.action_space.n)
                    start = time.perf_counter()
                    env.step(action)
                    step_times.append(time.perf_counter() - start)
            steps_done += episode
    finally:
        env.close()
    return startup, init_times, step_times


def _measure_baseline(env_class, num_steps: int):
    rng = random.Random(0)
    init_times, step_times = [], []
    steps_done = 0
    while steps_done < num_steps:
        benchmark = BENCHMARKS[steps_done % len(BENCHMARKS)]
        env = env_class(benchmark=benchmark)
        try:
            start = time.perf_counter()
            env.reset()
            init_times.append(time.perf_counter() - start)
            episode = min(20, num_steps - steps_done)
            for _ in range(episode):
                action = rng.randrange(env.num_actions)
                start = time.perf_counter()
                env.step(action)
                step_times.append(time.perf_counter() - start)
            steps_done += episode
        finally:
            env.close()
    return init_times, step_times


def test_table2_operation_costs(benchmark):
    num_steps = int(120 * bench_scale())

    def run_experiment():
        results = {}
        startup, init_times, step_times = _measure_compilergym(num_steps, batched=False)
        results["CompilerGym"] = {
            "service_startup_ms": startup * 1e3,
            "environment_init": _summary(init_times),
            "environment_step": _summary(step_times),
        }
        _, _, batched_steps = _measure_compilergym(num_steps, batched=True)
        results["CompilerGym-batched"] = {"environment_step": _summary(batched_steps)}
        for name, env_class in (
            ("Autophase", AutophaseStyleEnvironment),
            ("OpenTuner", OpenTunerStyleEnvironment),
        ):
            init_times, step_times = _measure_baseline(env_class, num_steps)
            results[name] = {
                "environment_init": _summary(init_times),
                "environment_step": _summary(step_times),
            }
        return results

    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    cg_step = results["CompilerGym"]["environment_step"]["mean_ms"]
    autophase_step = results["Autophase"]["environment_step"]["mean_ms"]
    opentuner_step = results["OpenTuner"]["environment_step"]["mean_ms"]
    batched_step = results["CompilerGym-batched"]["environment_step"]["mean_ms"]
    results["speedup_vs_autophase"] = autophase_step / cg_step
    results["speedup_vs_opentuner"] = opentuner_step / cg_step
    results["batched_speedup"] = cg_step / batched_step
    # Compare typical (median) init costs: the mean is dominated by one-off
    # outliers (first-time benchmark parses, GC pauses under a loaded
    # machine), which makes the shape check below flaky.
    results["opentuner_init_over_compilergym_init"] = (
        results["OpenTuner"]["environment_init"]["p50_ms"]
        / results["CompilerGym"]["environment_init"]["p50_ms"]
    )

    rows = [
        f"{name:<22} init(mean)={data.get('environment_init', {}).get('mean_ms', float('nan')):8.2f}ms"
        f"  step(p50)={data['environment_step']['p50_ms']:8.3f}ms"
        f"  step(mean)={data['environment_step']['mean_ms']:8.3f}ms"
        for name, data in results.items()
        if isinstance(data, dict) and "environment_step" in data
    ]
    rows.append(f"Step speedup vs Autophase baseline: {results['speedup_vs_autophase']:.1f}x (paper: 27x)")
    rows.append(f"Further speedup from batched steps: {results['batched_speedup']:.1f}x (paper: 2.9x)")
    save_table("table2", "Table II: per-operation wall times", rows)
    save_results("table2", results)

    # Shape checks: incremental steps beat recompile-from-scratch; OpenTuner
    # pays the highest initialization cost; batching helps.
    assert results["speedup_vs_autophase"] > 3
    assert results["speedup_vs_opentuner"] > 3
    assert results["opentuner_init_over_compilergym_init"] > 1
    assert results["batched_speedup"] > 1


def test_table2_environment_init_is_amortized_constant(benchmark):
    """Repeated resets on the same benchmark hit the service's benchmark
    cache, so initialization cost is amortized O(1)."""
    env = repro.make("llvm-v0", benchmark="benchmark://cbench-v1/qsort")
    try:
        env.reset()

        def reset_again():
            env.reset()

        benchmark(reset_again)
        runtime = env.service.runtime
        assert runtime.benchmark_cache.hits > 0
    finally:
        env.close()
