"""Table III: computational cost of each observation and reward space.

Measures the wall time of computing every LLVM observation space and reward
metric over random trajectories. The paper's headline shape: a ~192x range
across observation spaces (cheap scalar counts up to expensive graph/embedding
representations) and a ~4727x range across reward metrics (code size vs
measured runtime), motivating lazy observation computation.
"""

import random
import time

from conftest import bench_scale, save_results, save_table

import repro
from repro.util.statistics import arithmetic_mean, percentile

OBSERVATION_SPACES = ["Ir", "InstCount", "Autophase", "Inst2vec", "Programl"]
REWARD_METRICS = ["IrInstructionCount", "ObjectTextSizeBytes", "Runtime"]
BENCHMARKS = ["crc32", "qsort", "sha", "adpcm", "gsm", "blowfish"]


def test_table3_observation_and_reward_space_costs(benchmark):
    samples_per_space = max(4, int(8 * bench_scale()))

    def run_experiment():
        rng = random.Random(0)
        env = repro.make("llvm-v0")
        times = {name: [] for name in OBSERVATION_SPACES + REWARD_METRICS}
        try:
            for name in BENCHMARKS:
                env.reset(benchmark=f"benchmark://cbench-v1/{name}")
                env.multistep([rng.randrange(env.action_space.n) for _ in range(5)])
                for space in OBSERVATION_SPACES + REWARD_METRICS:
                    for _ in range(samples_per_space):
                        start = time.perf_counter()
                        env.observation[space]
                        times[space].append(time.perf_counter() - start)
        finally:
            env.close()
        return times

    times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    summary = {
        space: {
            "p50_ms": percentile(values, 50) * 1e3,
            "p99_ms": percentile(values, 99) * 1e3,
            "mean_ms": arithmetic_mean(values) * 1e3,
        }
        for space, values in times.items()
    }
    observation_means = [summary[s]["mean_ms"] for s in OBSERVATION_SPACES]
    reward_means = [summary[s]["mean_ms"] for s in REWARD_METRICS]
    summary["observation_space_range"] = max(observation_means) / max(1e-9, min(observation_means))
    summary["reward_space_range"] = max(reward_means) / max(1e-9, min(reward_means))

    rows = [
        f"{space:<22} p50={summary[space]['p50_ms']:8.3f}ms  mean={summary[space]['mean_ms']:8.3f}ms"
        for space in OBSERVATION_SPACES + REWARD_METRICS
    ]
    rows.append(f"observation-space cost range: {summary['observation_space_range']:.0f}x (paper: 192x)")
    rows.append(f"reward-metric cost range: {summary['reward_space_range']:.0f}x (paper: 4727x)")
    save_table("table3", "Table III: observation/reward space costs", rows)
    save_results("table3", summary)

    # Shape checks: the graph/embedding representations are much more
    # expensive than the scalar counters, and code size is the cheapest
    # reward metric.
    assert summary["observation_space_range"] > 5
    assert summary["Inst2vec"]["mean_ms"] > summary["InstCount"]["mean_ms"]
    assert summary["Programl"]["mean_ms"] > summary["InstCount"]["mean_ms"]
    assert summary["IrInstructionCount"]["mean_ms"] <= min(
        summary["ObjectTextSizeBytes"]["mean_ms"], summary["Runtime"]["mean_ms"]
    ) * 1.5
