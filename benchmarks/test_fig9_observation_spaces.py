"""Figure 9: the effect of program representation on learning.

Trains PPO agents with four observation configurations — Autophase and
InstCount feature vectors, each with and without the concatenated histogram
of previous actions — and records validation performance as a function of
training episodes. The qualitative findings to reproduce: adding the action
histogram helps both representations, and Autophase (which encodes more
program structure) outperforms InstCount.
"""

from conftest import bench_scale, save_results, save_table

import repro
from repro.rl import PPOAgent
from repro.rl.trainer import (
    make_rl_environment,
    observation_dim,
    train_agent,
)
from repro.util.gaussian import gaussian_filter1d

NUM_ACTIONS = 42
EPISODE_LENGTH = 25

CONFIGURATIONS = [
    ("Autophase w. hist", "Autophase", True),
    ("Autophase", "Autophase", False),
    ("InstCount w. hist", "InstCount", True),
    ("InstCount", "InstCount", False),
]
VALIDATION_BENCHMARKS = [f"generator://csmith-v0/{30_000 + i}" for i in range(3)]


def test_fig9_observation_space_learning_curves(benchmark):
    scale = bench_scale()
    training_episodes = int(100 * scale)
    validation_interval = max(10, training_episodes // 5)

    def run_experiment():
        curves = {}
        training_benchmarks = [f"generator://csmith-v0/{i}" for i in range(15)]
        for label, observation_space, use_histogram in CONFIGURATIONS:
            env = repro.make("llvm-v0", reward_space="IrInstructionCountNorm")
            wrapped = make_rl_environment(
                env,
                observation_space=observation_space,
                use_action_histogram=use_histogram,
                episode_length=EPISODE_LENGTH,
            )
            obs_dim = observation_dim(observation_space, use_histogram, NUM_ACTIONS)
            agent = PPOAgent(obs_dim, NUM_ACTIONS, seed=0)
            try:
                result = train_agent(
                    agent,
                    wrapped,
                    training_benchmarks,
                    episodes=training_episodes,
                    validation_benchmarks=VALIDATION_BENCHMARKS,
                    validation_interval=validation_interval,
                )
            finally:
                wrapped.close()
            curves[label] = {
                "episodes": result.validation_episodes,
                "scores": result.validation_scores,
                "smoothed": gaussian_filter1d(result.validation_scores, sigma=1.0),
            }
        return curves

    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for label, curve in curves.items():
        points = ", ".join(
            f"{episode}:{score:.3f}" for episode, score in zip(curve["episodes"], curve["scores"])
        )
        rows.append(f"{label:<20} {points}")
    save_table("fig9", "Figure 9: validation geomean code-size reduction vs training episodes", rows)
    save_results("fig9", curves)

    # Shape checks: every configuration learns something (positive validation
    # scores), and the richer representation with the action histogram is not
    # dominated by the bare InstCount counters.
    finals = {label: curve["scores"][-1] for label, curve in curves.items()}
    assert all(value > 0 for value in finals.values())
    assert finals["Autophase w. hist"] >= finals["InstCount"] * 0.8
