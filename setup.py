"""Setuptools entry point.

The project metadata lives in pyproject.toml; this shim exists so the package
can be installed with ``pip install -e .`` in offline environments that lack
the ``wheel`` package required by PEP 517 editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of CompilerGym: Robust, Performant Compiler Optimization "
        "Environments for AI Research (CGO 2022)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "networkx"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro-compilergym=repro.cli.main:main"]},
)
